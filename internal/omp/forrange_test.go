package omp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// forRangeSchedules are the schedules the block-worksharing property tests
// sweep: every kind, with chunk sizes that divide n, don't, and exceed it.
func forRangeSchedules() []Schedule {
	return []Schedule{
		StaticEqual(),
		StaticChunk(1),
		StaticChunk(3),
		Dynamic(1),
		Dynamic(4),
		Guided(1),
		Guided(2),
	}
}

// TestForRangeCoversEveryIterationExactlyOnce is the worksharing safety
// property for the block API: whatever the schedule, team size and trip
// count — including the off-by-one-prone n = p-1, p, p+1 — every iteration
// in [0, n) runs exactly once, and blocks handed to the body are non-empty
// and in range.
func TestForRangeCoversEveryIterationExactlyOnce(t *testing.T) {
	for _, p := range []int{1, 3, 4, 8} {
		for _, n := range []int{0, 1, p - 1, p, p + 1, 10*p + 3} {
			if n < 0 {
				continue
			}
			for _, sched := range forRangeSchedules() {
				counts := make([]atomic.Int32, n)
				Parallel(func(th *Thread) {
					th.ForRange(0, n, sched, func(start, stop int) {
						if start >= stop {
							t.Errorf("p=%d n=%d %v: empty block [%d,%d)", p, n, sched, start, stop)
						}
						if start < 0 || stop > n {
							t.Errorf("p=%d n=%d %v: block [%d,%d) outside [0,%d)", p, n, sched, start, stop, n)
						}
						for i := start; i < stop; i++ {
							counts[i].Add(1)
						}
					})
				}, WithNumThreads(p))
				for i := range counts {
					if c := counts[i].Load(); c != 1 {
						t.Errorf("p=%d n=%d %v: iteration %d ran %d times", p, n, sched, i, c)
					}
				}
			}
		}
	}
}

// TestForAndForRangeExecuteIdenticalIterationSets: For is a wrapper over
// ForRange, and for the deterministic static schedules the two APIs must
// assign every iteration to the same thread. For the demand-driven
// schedules the assignment is nondeterministic, so only the exactly-once
// property is compared.
func TestForAndForRangeExecuteIdenticalIterationSets(t *testing.T) {
	assign := func(n, p int, sched Schedule, useRange bool) []int32 {
		owner := make([]int32, n)
		for i := range owner {
			owner[i] = -1
		}
		var assigned atomic.Int64
		Parallel(func(th *Thread) {
			id := int32(th.ThreadNum())
			record := func(i int) {
				atomic.StoreInt32(&owner[i], id)
				assigned.Add(1)
			}
			if useRange {
				th.ForRange(0, n, sched, func(start, stop int) {
					for i := start; i < stop; i++ {
						record(i)
					}
				})
			} else {
				th.For(0, n, sched, record)
			}
		}, WithNumThreads(p))
		if got := assigned.Load(); got != int64(n) {
			t.Errorf("n=%d p=%d %v range=%v: %d iterations executed", n, p, sched, useRange, got)
		}
		return owner
	}

	for _, p := range []int{1, 3, 4, 8} {
		for _, n := range []int{0, 1, p - 1, p, p + 1, 10*p + 3} {
			if n < 0 {
				continue
			}
			for _, sched := range forRangeSchedules() {
				forOwner := assign(n, p, sched, false)
				rangeOwner := assign(n, p, sched, true)
				if sched.kind != schedStaticEqual && sched.kind != schedStaticChunk {
					continue // dynamic/guided: owner is timing-dependent
				}
				for i := range forOwner {
					if forOwner[i] != rangeOwner[i] {
						t.Errorf("n=%d p=%d %v: iteration %d on thread %d via For, %d via ForRange",
							n, p, sched, i, forOwner[i], rangeOwner[i])
					}
				}
			}
		}
	}
}

// TestParallelForRangeDeliversThreadIDs mirrors the ParallelFor test for
// the fused block form: under equal chunks with n = 8p, every thread
// receives exactly one block of 8 iterations.
func TestParallelForRangeDeliversThreadIDs(t *testing.T) {
	const p, per = 4, 8
	var mu sync.Mutex
	blocks := map[int][][2]int{}
	ParallelForRange(p*per, StaticEqual(), func(start, stop, tid int) {
		mu.Lock()
		blocks[tid] = append(blocks[tid], [2]int{start, stop})
		mu.Unlock()
	}, WithNumThreads(p))
	if len(blocks) != p {
		t.Fatalf("blocks went to %d threads, want %d", len(blocks), p)
	}
	for tid := 0; tid < p; tid++ {
		bs := blocks[tid]
		if len(bs) != 1 || bs[0][0] != tid*per || bs[0][1] != (tid+1)*per {
			t.Errorf("thread %d got blocks %v, want [[%d %d]]", tid, bs, tid*per, (tid+1)*per)
		}
	}
}

// TestGuidedChunkSequences pins the exact chunk-size sequence the guided
// dispenser hands out, including the tail boundary where remaining/parties
// rounds to zero and minChunk exceeds what is left: the final chunk must be
// clamped to the remainder, never overshooting the limit.
func TestGuidedChunkSequences(t *testing.T) {
	cases := []struct {
		n, parties, minChunk int
		want                 []int
	}{
		{n: 10, parties: 3, minChunk: 1, want: []int{3, 2, 1, 1, 1, 1, 1}},
		{n: 7, parties: 4, minChunk: 3, want: []int{3, 3, 1}},
		{n: 0, parties: 4, minChunk: 1, want: nil},
		{n: 1, parties: 8, minChunk: 1, want: []int{1}},
		{n: 5, parties: 2, minChunk: 8, want: []int{5}},   // minChunk > n: one clamped chunk
		{n: 16, parties: 1, minChunk: 1, want: []int{16}}, // single party takes everything
		{n: 6, parties: 0, minChunk: 0, want: []int{6}},   // degenerate inputs sanitized to 1
		{n: 12, parties: 4, minChunk: 2, want: []int{3, 2, 2, 2, 2, 1}},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("n=%d,p=%d,min=%d", tc.n, tc.parties, tc.minChunk), func(t *testing.T) {
			g := newGuidedCounter(tc.n, tc.parties, tc.minChunk)
			var got []int
			next := 0
			for {
				start, stop, ok := g.grab()
				if !ok {
					break
				}
				if start != next {
					t.Fatalf("chunk %d starts at %d, want contiguous start %d", len(got), start, next)
				}
				if stop > tc.n {
					t.Fatalf("chunk [%d,%d) overshoots limit %d", start, stop, tc.n)
				}
				got = append(got, stop-start)
				next = stop
			}
			if next != tc.n {
				t.Fatalf("chunks cover [0,%d), want [0,%d)", next, tc.n)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("chunk sizes %v, want %v", got, tc.want)
			}
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Fatalf("chunk sizes %v, want %v", got, tc.want)
				}
			}
		})
	}
}
