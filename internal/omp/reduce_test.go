package omp

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestReduceSumAllThreadsReceiveResult(t *testing.T) {
	const n = 8
	results := make([]int, n)
	Parallel(func(th *Thread) {
		results[th.ThreadNum()] = Reduce(th, Sum[int](), th.ThreadNum()+1)
	}, WithNumThreads(n))
	want := n * (n + 1) / 2
	for id, r := range results {
		if r != want {
			t.Fatalf("thread %d received %d, want %d", id, r, want)
		}
	}
}

func TestReduceOperators(t *testing.T) {
	// Contributions are (id+1) for a 6-thread team: 1..6.
	const n = 6
	run := func(op func(int, int) int) int {
		var out int
		Parallel(func(th *Thread) {
			r := Reduce(th, op, th.ThreadNum()+1)
			th.Master(func() { out = r })
		}, WithNumThreads(n))
		return out
	}
	if got := run(Sum[int]()); got != 21 {
		t.Errorf("Sum = %d, want 21", got)
	}
	if got := run(Prod[int]()); got != 720 {
		t.Errorf("Prod = %d, want 720", got)
	}
	if got := run(Max[int]()); got != 6 {
		t.Errorf("Max = %d, want 6", got)
	}
	if got := run(Min[int]()); got != 1 {
		t.Errorf("Min = %d, want 1", got)
	}
}

func TestReduceBitwiseOperators(t *testing.T) {
	const n = 4 // contributions 0b0001, 0b0010, 0b0011, 0b0100
	contrib := func(id int) uint { return uint(id + 1) }
	run := func(op func(uint, uint) uint) uint {
		var out uint
		Parallel(func(th *Thread) {
			r := Reduce(th, op, contrib(th.ThreadNum()))
			th.Master(func() { out = r })
		}, WithNumThreads(n))
		return out
	}
	if got := run(BitOr[uint]()); got != 0b0111 {
		t.Errorf("BitOr = %b, want 111", got)
	}
	if got := run(BitAnd[uint]()); got != 0 {
		t.Errorf("BitAnd = %b, want 0", got)
	}
	if got := run(BitXor[uint]()); got != 1^2^3^4 {
		t.Errorf("BitXor = %d, want %d", got, 1^2^3^4)
	}
}

func TestReduceLogicalOperators(t *testing.T) {
	const n = 5
	run := func(op func(bool, bool) bool, pred func(id int) bool) bool {
		var out bool
		Parallel(func(th *Thread) {
			r := Reduce(th, op, pred(th.ThreadNum()))
			th.Master(func() { out = r })
		}, WithNumThreads(n))
		return out
	}
	allTrue := func(int) bool { return true }
	oneFalse := func(id int) bool { return id != 2 }
	allFalse := func(int) bool { return false }
	if !run(LogAnd(), allTrue) || run(LogAnd(), oneFalse) {
		t.Error("LogAnd wrong")
	}
	if !run(LogOr(), oneFalse) || run(LogOr(), allFalse) {
		t.Error("LogOr wrong")
	}
}

// TestReduceNonCommutativeAssociative: string concatenation is associative
// but not commutative; the tree must still produce the in-order fold.
func TestReduceNonCommutativeAssociative(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 13} {
		var out string
		Parallel(func(th *Thread) {
			s := Reduce(th, func(a, b string) string { return a + b }, string(rune('a'+th.ThreadNum())))
			th.Master(func() { out = s })
		}, WithNumThreads(n))
		want := strings.Repeat("", 0)
		for i := 0; i < n; i++ {
			want += string(rune('a' + i))
		}
		if out != want {
			t.Fatalf("n=%d: tree fold = %q, want in-order %q", n, out, want)
		}
	}
}

// TestReduceMatchesSequentialFoldProperty: for random team sizes and
// values, the tree reduce equals the sequential fold.
func TestReduceMatchesSequentialFoldProperty(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		p := 1 + int(pRaw%12)
		rng := rand.New(rand.NewSource(seed))
		vals := make([]int, p)
		for i := range vals {
			vals[i] = rng.Intn(1000) - 500
		}
		var out int
		Parallel(func(th *Thread) {
			r := Reduce(th, Sum[int](), vals[th.ThreadNum()])
			th.Master(func() { out = r })
		}, WithNumThreads(p))
		want := 0
		for _, v := range vals {
			want += v
		}
		return out == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceDeterministicAcrossRuns(t *testing.T) {
	// Floating-point sums depend on combine order; the tree order is
	// fixed, so repeated runs must agree bit-for-bit.
	const n = 7
	vals := []float64{0.1, 0.2, 0.3, 1e10, -1e10, 0.4, 0.5}
	run := func() float64 {
		var out float64
		Parallel(func(th *Thread) {
			r := Reduce(th, Sum[float64](), vals[th.ThreadNum()])
			th.Master(func() { out = r })
		}, WithNumThreads(n))
		return out
	}
	first := run()
	for i := 0; i < 10; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d: %v != first run %v (combine order not deterministic)", i, got, first)
		}
	}
}

func TestRepeatedReductionsInOneRegion(t *testing.T) {
	const n = 4
	var sum, prod int
	Parallel(func(th *Thread) {
		s := Reduce(th, Sum[int](), th.ThreadNum()+1)
		p := Reduce(th, Prod[int](), th.ThreadNum()+1)
		th.Master(func() { sum, prod = s, p })
	}, WithNumThreads(n))
	if sum != 10 || prod != 24 {
		t.Fatalf("sum=%d prod=%d, want 10 and 24", sum, prod)
	}
}

func TestParallelForReduceMatchesSequential(t *testing.T) {
	const size = 10000
	rng := rand.New(rand.NewSource(5))
	a := make([]int64, size)
	var want int64
	for i := range a {
		a[i] = int64(rng.Intn(2000) - 1000)
		want += a[i]
	}
	for _, threads := range []int{1, 2, 4, 7, 8} {
		for _, sched := range []Schedule{StaticEqual(), StaticChunk(1), Dynamic(16), Guided(4)} {
			got := ParallelForReduce(size, sched, Sum[int64](), 0,
				func(i int) int64 { return a[i] }, WithNumThreads(threads))
			if got != want {
				t.Fatalf("threads=%d sched=%v: sum %d, want %d", threads, sched, got, want)
			}
		}
	}
}

func TestParallelForReduceMax(t *testing.T) {
	got := ParallelForReduce(1000, StaticEqual(), Max[int](), -1<<62,
		func(i int) int { return (i * 37) % 1000 }, WithNumThreads(4))
	if got != 999 {
		t.Fatalf("max = %d, want 999", got)
	}
}

func TestParallelForReduceEmptyLoopYieldsIdentity(t *testing.T) {
	got := ParallelForReduce(0, StaticEqual(), Sum[int](), 0,
		func(int) int { t.Error("body ran for empty loop"); return 1 },
		WithNumThreads(4))
	if got != 0 {
		t.Fatalf("empty reduce = %d, want identity 0", got)
	}
}

// TestParallelForReduceProperty: any random array, thread count and
// schedule sums to the sequential answer.
func TestParallelForReduceProperty(t *testing.T) {
	f := func(seed int64, pRaw, schedRaw uint8) bool {
		p := 1 + int(pRaw%8)
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500)
		a := make([]int, n)
		want := 0
		for i := range a {
			a[i] = rng.Intn(100)
			want += a[i]
		}
		var sched Schedule
		switch schedRaw % 3 {
		case 0:
			sched = StaticEqual()
		case 1:
			sched = StaticChunk(2)
		default:
			sched = Dynamic(3)
		}
		got := ParallelForReduce(n, sched, Sum[int](), 0,
			func(i int) int { return a[i] }, WithNumThreads(p))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceTreeSumAllThreadsReceiveResult(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16} {
		results := make([]int, n)
		Parallel(func(th *Thread) {
			results[th.ThreadNum()] = ReduceTree(th, Sum[int](), th.ThreadNum()+1)
		}, WithNumThreads(n))
		want := n * (n + 1) / 2
		for id, got := range results {
			if got != want {
				t.Fatalf("n=%d: thread %d got %d, want %d", n, id, got, want)
			}
		}
	}
}

func TestReduceTreeNonCommutativeAssociative(t *testing.T) {
	// String concatenation is associative but not commutative: the task
	// tree must still produce the in-thread-id-order fold, whatever
	// thread executes each combine node.
	for _, n := range []int{1, 2, 3, 5, 8, 13, 16} {
		var out string
		Parallel(func(th *Thread) {
			s := ReduceTree(th, func(a, b string) string { return a + b }, string(rune('a'+th.ThreadNum())))
			th.Master(func() { out = s })
		}, WithNumThreads(n))
		var want string
		for i := 0; i < n; i++ {
			want += string(rune('a' + i))
		}
		if out != want {
			t.Fatalf("n=%d: task-tree fold = %q, want in-order %q", n, out, want)
		}
	}
}

func TestReduceTreeAgreesWithReduce(t *testing.T) {
	for _, n := range []int{1, 4, 8} {
		var tree, rounds int64
		Parallel(func(th *Thread) {
			local := int64((th.ThreadNum() + 3) * 17)
			a := ReduceTree(th, Sum[int64](), local)
			b := Reduce(th, Sum[int64](), local)
			th.Master(func() { tree, rounds = a, b })
		}, WithNumThreads(n))
		if tree != rounds {
			t.Fatalf("n=%d: ReduceTree=%d Reduce=%d", n, tree, rounds)
		}
	}
}
