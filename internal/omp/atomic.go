package omp

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file provides the two mutual-exclusion mechanisms the paper's
// critical2.c patternlet compares (#pragma omp atomic vs #pragma omp
// critical, Figures 29–30), plus OpenMP's explicit lock API.

// AtomicAddInt64 performs x += delta as a single atomic hardware operation,
// like #pragma omp atomic on an integer update. It returns the new value.
func AtomicAddInt64(x *int64, delta int64) int64 {
	return atomic.AddInt64(x, delta)
}

// AtomicAddFloat64 performs x += delta atomically via a compare-and-swap
// loop on the float's bit pattern. critical2.c updates a float64 bank
// balance with #pragma omp atomic; this is the Go equivalent.
func AtomicAddFloat64(x *uint64, delta float64) float64 {
	for {
		oldBits := atomic.LoadUint64(x)
		newVal := math.Float64frombits(oldBits) + delta
		if atomic.CompareAndSwapUint64(x, oldBits, math.Float64bits(newVal)) {
			return newVal
		}
	}
}

// LoadFloat64 reads the float64 stored by AtomicAddFloat64.
func LoadFloat64(x *uint64) float64 {
	return math.Float64frombits(atomic.LoadUint64(x))
}

// StoreFloat64 stores v into the atomic float64 cell x.
func StoreFloat64(x *uint64, v float64) {
	atomic.StoreUint64(x, math.Float64bits(v))
}

// Lock is OpenMP's explicit lock (omp_lock_t). The zero value is an
// unlocked lock ready for use (omp_init_lock is implicit).
type Lock struct {
	mu sync.Mutex
}

// Set acquires the lock, blocking if necessary (omp_set_lock).
func (l *Lock) Set() { l.mu.Lock() }

// Unset releases the lock (omp_unset_lock).
func (l *Lock) Unset() { l.mu.Unlock() }

// Test attempts to acquire the lock without blocking and reports success
// (omp_test_lock).
func (l *Lock) Test() bool { return l.mu.TryLock() }

// UnsafeCounter is the teaching device behind the paper's race-condition
// patternlets (Figure 22 and the balance-loss demo in §III.E): a counter
// whose Add is deliberately a non-atomic read-modify-write, so concurrent
// increments lose updates.
//
// It is built from separate atomic load / compute / store steps rather
// than a plain racy int, so the lost-update behaviour is identical but the
// program remains well-defined Go and clean under the race detector —
// which lets the demonstration live inside the test suite.
type UnsafeCounter struct {
	bits  uint64
	ticks uint64
}

// interleaveWindow sits between the unprotected read and write. On a
// multicore host the OS provides the interleavings that lose updates; on a
// single hardware core Go's preemption is too coarse (~10ms) to land
// inside a nanosecond window, so every 16th update explicitly yields the
// processor there — modeling the preemption a real parallel machine
// supplies for free. The lost-update *mechanism* (stale read overwrites a
// concurrent update) is untouched.
func interleaveWindow(ticks *uint64) {
	if atomic.AddUint64(ticks, 1)%16 == 0 {
		runtime.Gosched()
	}
}

// Add performs the classic unprotected balance += delta: read, compute,
// write, with a deliberate interleaving window between read and write.
func (c *UnsafeCounter) Add(delta float64) {
	v := math.Float64frombits(atomic.LoadUint64(&c.bits))
	v += delta
	interleaveWindow(&c.ticks)
	atomic.StoreUint64(&c.bits, math.Float64bits(v))
}

// Value returns the current counter value.
func (c *UnsafeCounter) Value() float64 {
	return math.Float64frombits(atomic.LoadUint64(&c.bits))
}

// Reset sets the counter back to zero.
func (c *UnsafeCounter) Reset() {
	atomic.StoreUint64(&c.bits, 0)
}

// UnsafeInt is the integer counterpart of UnsafeCounter, used by the
// reduction and private-variable patternlets where the racy accumulator is
// an int (Figure 22's incorrect parallel sum).
type UnsafeInt struct {
	v     int64
	ticks uint64
}

// Add performs the unprotected v += delta read-modify-write.
func (c *UnsafeInt) Add(delta int64) {
	v := atomic.LoadInt64(&c.v)
	v += delta
	interleaveWindow(&c.ticks)
	atomic.StoreInt64(&c.v, v)
}

// Value returns the current value.
func (c *UnsafeInt) Value() int64 { return atomic.LoadInt64(&c.v) }

// Reset sets the counter to zero.
func (c *UnsafeInt) Reset() { atomic.StoreInt64(&c.v, 0) }
