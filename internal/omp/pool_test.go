package omp

import (
	"sync/atomic"
	"testing"
)

// TestPoolReusesWorkersAcrossRegions: after a warm-up region has parked its
// workers, steady-state fork/join must not create goroutines.
func TestPoolReusesWorkersAcrossRegions(t *testing.T) {
	const teamSize = 4
	Parallel(func(th *Thread) {}, WithNumThreads(teamSize)) // warm the pool
	before := spawnedWorkers.Load()
	var ran atomic.Int64
	for i := 0; i < 200; i++ {
		Parallel(func(th *Thread) { ran.Add(1) }, WithNumThreads(teamSize))
	}
	if got := spawnedWorkers.Load(); got != before {
		t.Errorf("steady-state regions spawned %d workers, want 0", got-before)
	}
	if got := ran.Load(); got != 200*teamSize {
		t.Errorf("%d bodies ran, want %d", got, 200*teamSize)
	}
}

// TestPoolFallbackWhenDisabled: with the pool capped at zero every region
// must fall back to spawning — the pre-pool behaviour — and still run
// correctly.
func TestPoolFallbackWhenDisabled(t *testing.T) {
	defer SetPoolSize(defaultPoolCap())
	SetPoolSize(0)
	if PoolSize() != 0 {
		t.Fatalf("PoolSize() = %d after SetPoolSize(0)", PoolSize())
	}
	before := spawnedWorkers.Load()
	var ran atomic.Int64
	const regions, teamSize = 5, 4
	for i := 0; i < regions; i++ {
		Parallel(func(th *Thread) { ran.Add(1) }, WithNumThreads(teamSize))
	}
	if got := ran.Load(); got != regions*teamSize {
		t.Errorf("%d bodies ran, want %d", got, regions*teamSize)
	}
	if got := spawnedWorkers.Load() - before; got != regions*(teamSize-1) {
		t.Errorf("spawned %d workers with pool disabled, want %d", got, regions*(teamSize-1))
	}
}

// TestPoolFallbackForOversizedTeam: a team larger than the pool can ever
// satisfy must still run every member, topping up with spawned workers.
func TestPoolFallbackForOversizedTeam(t *testing.T) {
	defer SetPoolSize(defaultPoolCap())
	SetPoolSize(2)
	Parallel(func(th *Thread) {}, WithNumThreads(3)) // park 2 workers
	var ran atomic.Int64
	const teamSize = 16
	Parallel(func(th *Thread) { ran.Add(1) }, WithNumThreads(teamSize))
	if got := ran.Load(); got != teamSize {
		t.Errorf("%d bodies ran, want %d", got, teamSize)
	}
}

// TestPoolSurvivesRegionPanic: a panicking region must propagate its panic
// (existing behaviour) and leave the pool usable for later regions.
func TestPoolSurvivesRegionPanic(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic in region body did not propagate")
			}
		}()
		Parallel(func(th *Thread) {
			if th.ThreadNum() == 1 {
				panic("boom")
			}
		}, WithNumThreads(4))
	}()
	var ran atomic.Int64
	Parallel(func(th *Thread) { ran.Add(1) }, WithNumThreads(4))
	if got := ran.Load(); got != 4 {
		t.Errorf("%d bodies ran after a panicked region, want 4", got)
	}
}

// TestTeamRecyclingKeepsThreadIdentity: recycled teams must present fresh,
// correctly-numbered Thread views each region.
func TestTeamRecyclingKeepsThreadIdentity(t *testing.T) {
	for region := 0; region < 50; region++ {
		var mask atomic.Int64
		n := 1 + region%8
		Parallel(func(th *Thread) {
			if th.NumThreads() != n {
				t.Errorf("region %d: NumThreads = %d, want %d", region, th.NumThreads(), n)
			}
			mask.Add(1 << th.ThreadNum())
		}, WithNumThreads(n))
		if want := int64(1<<n - 1); mask.Load() != want {
			t.Errorf("region %d: thread-id mask %b, want %b", region, mask.Load(), want)
		}
	}
}
