package omp

import (
	"sync"
	"testing"
)

func TestAtomicAddInt64Exact(t *testing.T) {
	const n, reps = 8, 5000
	var x int64
	ParallelFor(n*reps, StaticEqual(), func(_, _ int) {
		AtomicAddInt64(&x, 1)
	}, WithNumThreads(n))
	if x != n*reps {
		t.Fatalf("x = %d, want %d", x, n*reps)
	}
}

func TestAtomicAddInt64ReturnsNewValue(t *testing.T) {
	var x int64 = 10
	if got := AtomicAddInt64(&x, 5); got != 15 {
		t.Fatalf("returned %d, want 15", got)
	}
}

func TestAtomicAddFloat64Exact(t *testing.T) {
	const n, reps = 8, 5000
	var cell uint64
	ParallelFor(n*reps, StaticEqual(), func(_, _ int) {
		AtomicAddFloat64(&cell, 1.0)
	}, WithNumThreads(n))
	if got := LoadFloat64(&cell); got != n*reps {
		t.Fatalf("balance = %v, want %d (atomic float add lost updates)", got, n*reps)
	}
}

func TestAtomicAddFloat64Fractions(t *testing.T) {
	var cell uint64
	StoreFloat64(&cell, 1.5)
	if got := AtomicAddFloat64(&cell, 0.25); got != 1.75 {
		t.Fatalf("got %v, want 1.75", got)
	}
	if got := LoadFloat64(&cell); got != 1.75 {
		t.Fatalf("Load = %v, want 1.75", got)
	}
}

func TestStoreLoadFloat64RoundTrip(t *testing.T) {
	var cell uint64
	for _, v := range []float64{0, -1.5, 3.14159, 1e300, -1e-300} {
		StoreFloat64(&cell, v)
		if got := LoadFloat64(&cell); got != v {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
}

func TestLockMutualExclusion(t *testing.T) {
	var l Lock
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 2000; r++ {
				l.Set()
				counter++
				l.Unset()
			}
		}()
	}
	wg.Wait()
	if counter != 16000 {
		t.Fatalf("counter = %d, want 16000", counter)
	}
}

func TestLockTest(t *testing.T) {
	var l Lock
	if !l.Test() {
		t.Fatal("Test on free lock failed")
	}
	if l.Test() {
		t.Fatal("Test on held lock succeeded")
	}
	l.Unset()
	if !l.Test() {
		t.Fatal("Test after Unset failed")
	}
	l.Unset()
}

// TestUnsafeCounterLosesUpdates demonstrates Figure 22 / §III.E: the
// unprotected read-modify-write drops deposits under contention. The loss
// is probabilistic, so we retry a few workloads and require at least one
// observed loss — and, always, that the result never exceeds the true
// total (money is lost, never minted).
func TestUnsafeCounterLosesUpdates(t *testing.T) {
	const n, reps = 8, 20000
	sawLoss := false
	for attempt := 0; attempt < 5 && !sawLoss; attempt++ {
		var c UnsafeCounter
		ParallelFor(n*reps, StaticEqual(), func(_, _ int) {
			c.Add(1.0)
		}, WithNumThreads(n))
		got := c.Value()
		if got > n*reps {
			t.Fatalf("racy counter OVERSHOT: %v > %d", got, n*reps)
		}
		if got < n*reps {
			sawLoss = true
		}
	}
	if !sawLoss {
		t.Skip("no lost update observed in 5 attempts — acceptable on a lightly scheduled host, but unusual")
	}
}

func TestUnsafeCounterSingleThreadIsExact(t *testing.T) {
	var c UnsafeCounter
	for i := 0; i < 1000; i++ {
		c.Add(1.0)
	}
	if c.Value() != 1000 {
		t.Fatalf("single-threaded racy counter = %v, want 1000", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("Reset left %v", c.Value())
	}
}

func TestUnsafeIntSingleThreadIsExact(t *testing.T) {
	var c UnsafeInt
	for i := 0; i < 1000; i++ {
		c.Add(3)
	}
	if c.Value() != 3000 {
		t.Fatalf("got %d, want 3000", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestUnsafeIntLosesUpdates(t *testing.T) {
	const n, reps = 8, 20000
	sawLoss := false
	for attempt := 0; attempt < 5 && !sawLoss; attempt++ {
		var c UnsafeInt
		ParallelFor(n*reps, StaticEqual(), func(_, _ int) {
			c.Add(1)
		}, WithNumThreads(n))
		if got := c.Value(); got > n*reps {
			t.Fatalf("racy int OVERSHOT: %d", got)
		} else if got < n*reps {
			sawLoss = true
		}
	}
	if !sawLoss {
		t.Skip("no lost update observed in 5 attempts")
	}
}
