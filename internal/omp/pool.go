package omp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Persistent worker pool backing Parallel. Real OpenMP runtimes keep their
// thread team alive between parallel regions so fork/join costs a wakeup,
// not a thread creation; this file gives the goroutine runtime the same
// fast path. A region borrows one parked worker per non-master team member
// and hands it the region body over a channel; when the body returns the
// worker parks itself again. If the pool cannot supply a worker — first
// use, or a team larger than the pool cap — the region falls back to
// spawning, and the new worker joins the pool afterwards (up to the cap).

// workItem is one team member's share of a region: the region's run
// function plus the member id. Passing the pair by value keeps the
// per-member handoff allocation-free.
type workItem struct {
	run func(int)
	id  int
}

// worker is one parked goroutine awaiting region bodies.
type worker struct {
	work chan workItem
}

// loop runs handed-off bodies until the pool declines to keep the worker.
func (w *worker) loop() {
	for it := range w.work {
		it.run(it.id)
		if !releaseWorker(w) {
			return
		}
	}
}

var workerPool struct {
	mu   sync.Mutex
	idle []*worker
	cap  int
}

func init() { workerPool.cap = defaultPoolCap() }

// spawnedWorkers counts worker goroutine creations, so tests can assert
// that steady-state regions reuse workers instead of spawning.
var spawnedWorkers atomic.Int64

// defaultPoolCap sizes the pool generously relative to the host: enough
// for several typical teaching-scale teams (the paper's demos use 4–8
// threads) without hoarding goroutines on big machines.
func defaultPoolCap() int {
	c := 4 * runtime.GOMAXPROCS(0)
	if c < 16 {
		c = 16
	}
	return c
}

// SetPoolSize bounds how many idle workers Parallel keeps parked between
// regions. Values below 0 are clamped to 0 (every region then spawns
// fresh goroutines, the pre-pool behaviour). Shrinking takes effect as
// running workers park.
func SetPoolSize(n int) {
	if n < 0 {
		n = 0
	}
	workerPool.mu.Lock()
	workerPool.cap = n
	// Drop surplus parked workers immediately.
	for len(workerPool.idle) > n {
		w := workerPool.idle[len(workerPool.idle)-1]
		workerPool.idle = workerPool.idle[:len(workerPool.idle)-1]
		close(w.work)
	}
	workerPool.mu.Unlock()
}

// PoolSize returns the current idle-worker cap.
func PoolSize() int {
	workerPool.mu.Lock()
	defer workerPool.mu.Unlock()
	return workerPool.cap
}

// acquireWorker pops a parked worker, or returns nil when none is idle.
func acquireWorker() *worker {
	p := &workerPool
	p.mu.Lock()
	if k := len(p.idle); k > 0 {
		w := p.idle[k-1]
		p.idle[k-1] = nil
		p.idle = p.idle[:k-1]
		p.mu.Unlock()
		return w
	}
	p.mu.Unlock()
	return nil
}

// releaseWorker parks w for reuse and reports whether it was kept; a
// worker over the cap is discarded and its goroutine exits.
func releaseWorker(w *worker) bool {
	p := &workerPool
	p.mu.Lock()
	if len(p.idle) >= p.cap {
		p.mu.Unlock()
		return false
	}
	p.idle = append(p.idle, w)
	p.mu.Unlock()
	return true
}

// submitRun runs run(id) on a pooled worker, spawning a new one when the
// pool is empty (first use, or a team bigger than the pool). The channel
// has capacity 1 so the handoff never blocks the forking (master)
// goroutine.
func submitRun(run func(int), id int) {
	it := workItem{run: run, id: id}
	if w := acquireWorker(); w != nil {
		w.work <- it
		return
	}
	w := &worker{work: make(chan workItem, 1)}
	w.work <- it
	spawnedWorkers.Add(1)
	go w.loop()
}
