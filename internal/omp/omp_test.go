package omp

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestParallelTeamSizeAndIDs(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8, 16} {
		var mu sync.Mutex
		seen := map[int]int{}
		Parallel(func(th *Thread) {
			if th.NumThreads() != n {
				t.Errorf("NumThreads = %d, want %d", th.NumThreads(), n)
			}
			mu.Lock()
			seen[th.ThreadNum()]++
			mu.Unlock()
		}, WithNumThreads(n))
		if len(seen) != n {
			t.Fatalf("n=%d: %d distinct thread ids", n, len(seen))
		}
		for id, count := range seen {
			if id < 0 || id >= n {
				t.Fatalf("n=%d: id %d out of range", n, id)
			}
			if count != 1 {
				t.Fatalf("n=%d: id %d ran %d times", n, id, count)
			}
		}
	}
}

func TestParallelDefaultsToMaxThreads(t *testing.T) {
	old := MaxThreads()
	defer SetNumThreads(old)
	SetNumThreads(3)
	got := 0
	Parallel(func(th *Thread) {
		th.Master(func() { got = th.NumThreads() })
	})
	if got != 3 {
		t.Fatalf("default team size %d, want 3", got)
	}
}

func TestSetNumThreadsClampsToOne(t *testing.T) {
	old := MaxThreads()
	defer SetNumThreads(old)
	SetNumThreads(-5)
	if MaxThreads() != 1 {
		t.Fatalf("MaxThreads = %d, want 1", MaxThreads())
	}
}

func TestWithNumThreadsClampsToOne(t *testing.T) {
	ran := 0
	Parallel(func(th *Thread) { ran++ }, WithNumThreads(0))
	if ran != 1 {
		t.Fatalf("team of clamped size ran %d bodies, want 1", ran)
	}
}

// TestBarrierOrdersPhases is the Figure 9 invariant: no thread's
// post-barrier work starts until every thread's pre-barrier work is done.
func TestBarrierOrdersPhases(t *testing.T) {
	const n = 8
	var before atomic.Int32
	ok := true
	var mu sync.Mutex
	Parallel(func(th *Thread) {
		before.Add(1)
		th.Barrier()
		if before.Load() != n {
			mu.Lock()
			ok = false
			mu.Unlock()
		}
	}, WithNumThreads(n))
	if !ok {
		t.Fatal("a thread passed the barrier early")
	}
}

func TestBarrierReusableAcrossPhases(t *testing.T) {
	const n, phases = 4, 25
	var counter atomic.Int32
	Parallel(func(th *Thread) {
		for p := 0; p < phases; p++ {
			counter.Add(1)
			th.Barrier()
			if got := counter.Load(); got != int32(n*(p+1)) {
				t.Errorf("phase %d: counter %d, want %d", p, got, n*(p+1))
			}
			th.Barrier()
		}
	}, WithNumThreads(n))
}

func TestMasterRunsOnThreadZeroOnly(t *testing.T) {
	var calls atomic.Int32
	var masterID atomic.Int32
	masterID.Store(-1)
	Parallel(func(th *Thread) {
		th.Master(func() {
			calls.Add(1)
			masterID.Store(int32(th.ThreadNum()))
		})
	}, WithNumThreads(8))
	if calls.Load() != 1 || masterID.Load() != 0 {
		t.Fatalf("master ran %d times on thread %d", calls.Load(), masterID.Load())
	}
}

func TestSingleRunsExactlyOnce(t *testing.T) {
	var calls atomic.Int32
	Parallel(func(th *Thread) {
		th.Single(func() { calls.Add(1) })
	}, WithNumThreads(8))
	if calls.Load() != 1 {
		t.Fatalf("single ran %d times", calls.Load())
	}
}

func TestSingleImpliedBarrier(t *testing.T) {
	// Everything the single block writes must be visible to all threads
	// after Single returns.
	var value int
	ok := true
	var mu sync.Mutex
	Parallel(func(th *Thread) {
		th.Single(func() { value = 42 })
		if value != 42 {
			mu.Lock()
			ok = false
			mu.Unlock()
		}
	}, WithNumThreads(8))
	if !ok {
		t.Fatal("a thread observed the pre-single value after Single returned")
	}
}

func TestRepeatedSinglesPickOnePerConstruct(t *testing.T) {
	const rounds = 10
	var calls atomic.Int32
	Parallel(func(th *Thread) {
		for i := 0; i < rounds; i++ {
			th.Single(func() { calls.Add(1) })
		}
	}, WithNumThreads(4))
	if calls.Load() != rounds {
		t.Fatalf("singles ran %d times, want %d", calls.Load(), rounds)
	}
}

func TestSectionsEachRunOnce(t *testing.T) {
	const nsec = 7
	var runs [nsec]atomic.Int32
	Parallel(func(th *Thread) {
		var fns []func()
		for i := 0; i < nsec; i++ {
			fns = append(fns, func() { runs[i].Add(1) })
		}
		th.Sections(fns...)
	}, WithNumThreads(3))
	for i := range runs {
		if runs[i].Load() != 1 {
			t.Fatalf("section %d ran %d times", i, runs[i].Load())
		}
	}
}

func TestSectionsMoreThreadsThanSections(t *testing.T) {
	var total atomic.Int32
	Parallel(func(th *Thread) {
		th.Sections(
			func() { total.Add(1) },
			func() { total.Add(1) },
		)
	}, WithNumThreads(8))
	if total.Load() != 2 {
		t.Fatalf("sections ran %d bodies, want 2", total.Load())
	}
}

func TestCriticalMutualExclusion(t *testing.T) {
	const n, reps = 8, 2000
	counter := 0
	Parallel(func(th *Thread) {
		for i := 0; i < reps; i++ {
			th.Critical("c", func() { counter++ })
		}
	}, WithNumThreads(n))
	if counter != n*reps {
		t.Fatalf("counter = %d, want %d (critical failed to exclude)", counter, n*reps)
	}
}

func TestCriticalDistinctNamesAreDistinctLocks(t *testing.T) {
	// A thread holding critical "a" must not block one entering "b":
	// verify both make progress when interleaved heavily.
	a, b := 0, 0
	Parallel(func(th *Thread) {
		for i := 0; i < 1000; i++ {
			if th.ThreadNum()%2 == 0 {
				th.Critical("a", func() { a++ })
			} else {
				th.Critical("b", func() { b++ })
			}
		}
	}, WithNumThreads(4))
	if a != 2000 || b != 2000 {
		t.Fatalf("a=%d b=%d, want 2000 each", a, b)
	}
}

func TestParallelPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Parallel did not re-panic")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic value %v does not carry the original", r)
		}
	}()
	Parallel(func(th *Thread) {
		if th.ThreadNum() == 1 {
			panic("boom")
		}
	}, WithNumThreads(4))
}

// TestPanicDoesNotStrandBarrierWaiters: a panicking thread poisons the
// barrier so teammates blocked in Barrier unwind instead of deadlocking.
func TestPanicDoesNotStrandBarrierWaiters(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer func() {
			recover() // the region's re-panic
			close(done)
		}()
		Parallel(func(th *Thread) {
			if th.ThreadNum() == 0 {
				panic("die before the barrier")
			}
			th.Barrier() // would hang forever without poisoning
		}, WithNumThreads(4))
	}()
	select {
	case <-done:
	case <-timeoutC(t):
		t.Fatal("teammates stranded at the barrier after a panic")
	}
}

func TestNestedParallelRegions(t *testing.T) {
	var mu sync.Mutex
	var pairs []string
	Parallel(func(outer *Thread) {
		Parallel(func(inner *Thread) {
			mu.Lock()
			pairs = append(pairs, itoa2(outer.ThreadNum(), inner.ThreadNum()))
			mu.Unlock()
		}, WithNumThreads(3))
	}, WithNumThreads(2))
	if len(pairs) != 6 {
		t.Fatalf("nested regions produced %d executions, want 6", len(pairs))
	}
	sort.Strings(pairs)
	want := []string{"0-0", "0-1", "0-2", "1-0", "1-1", "1-2"}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("pairs = %v, want %v", pairs, want)
		}
	}
}

func TestGetWTimeMonotonic(t *testing.T) {
	a := GetWTime()
	b := GetWTime()
	if b < a {
		t.Fatalf("GetWTime went backwards: %v then %v", a, b)
	}
}

func itoa2(a, b int) string {
	return string(rune('0'+a)) + "-" + string(rune('0'+b))
}

func timeoutC(t *testing.T) <-chan struct{} {
	t.Helper()
	ch := make(chan struct{})
	go func() {
		defer close(ch)
		// Generous bound: any poisoning bug manifests as a permanent hang.
		<-testTimer()
	}()
	return ch
}

func testTimer() <-chan time.Time { return time.After(5 * time.Second) }
