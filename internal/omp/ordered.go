package omp

import "sync"

// Ordered executes fn for loop iteration i strictly in ascending iteration
// order across the team, like #pragma omp ordered inside a loop with the
// ordered clause. Every iteration of the enclosing For must call Ordered
// exactly once, passing its own index; lo and hi must match the loop
// bounds.
type OrderedRegion struct {
	mu   sync.Mutex
	cond *sync.Cond
	next int
	hi   int
}

// NewOrdered creates the shared ordered-region state for a loop over
// [lo, hi).
func NewOrdered(lo, hi int) *OrderedRegion {
	o := &OrderedRegion{next: lo, hi: hi}
	o.cond = sync.NewCond(&o.mu)
	return o
}

// Do blocks until every iteration below i has completed its ordered
// section, runs fn, and releases iteration i+1.
func (o *OrderedRegion) Do(i int, fn func()) {
	o.mu.Lock()
	for o.next != i {
		o.cond.Wait()
	}
	o.mu.Unlock()
	fn()
	o.mu.Lock()
	o.next = i + 1
	o.cond.Broadcast()
	o.mu.Unlock()
}
