package omp

import (
	"sync/atomic"
	"testing"

	"repro/internal/telemetry"
)

// withCollector enables a fresh collector + stream for the test body and
// disables it afterwards so other tests see the default (off) state.
func withCollector(t *testing.T, body func(col *telemetry.Collector, stream *telemetry.Stream)) {
	t.Helper()
	stream := &telemetry.Stream{}
	col := telemetry.New(telemetry.WithSink(stream))
	telemetry.Enable(col)
	defer telemetry.Disable()
	body(col, stream)
}

// countEvents tallies stream events by (cat, name) and type.
func countEvents(stream *telemetry.Stream) map[string]int {
	out := map[string]int{}
	for _, e := range stream.Events() {
		kind := "span"
		if e.Type == telemetry.EventInstant {
			kind = "instant"
		}
		out[kind+":"+e.Cat+"/"+e.Name]++
	}
	return out
}

func TestTelemetryRegionAndMemberSpans(t *testing.T) {
	withCollector(t, func(col *telemetry.Collector, stream *telemetry.Stream) {
		Parallel(func(th *Thread) {
			th.Barrier()
		}, WithNumThreads(4))

		got := countEvents(stream)
		if got["span:omp/region"] != 1 {
			t.Errorf("region spans = %d, want 1", got["span:omp/region"])
		}
		// The master is covered by the region span; workers 1..3 each get a
		// member span.
		if got["span:omp/member"] != 3 {
			t.Errorf("member spans = %d, want 3", got["span:omp/member"])
		}
		if got["span:omp/barrier-wait"] != 4 {
			t.Errorf("barrier-wait spans = %d, want 4", got["span:omp/barrier-wait"])
		}
		if n := col.Counter("omp.regions").Load(); n != 1 {
			t.Errorf("omp.regions = %d, want 1", n)
		}
		// The region span is annotated with its thread count.
		for _, e := range stream.Events() {
			if e.Cat == "omp" && e.Name == "region" {
				var threads string
				for _, a := range e.Args {
					if a.Key == "threads" {
						threads = a.Val
					}
				}
				if threads != "4" {
					t.Errorf("region threads arg = %q, want 4", threads)
				}
			}
		}
	})
}

func TestTelemetryTaskSpansAndCounters(t *testing.T) {
	withCollector(t, func(col *telemetry.Collector, stream *telemetry.Stream) {
		const ntasks = 64
		var ran atomic.Int64
		Parallel(func(th *Thread) {
			th.Master(func() {
				for i := 0; i < ntasks; i++ {
					th.Task(func() { ran.Add(1) })
				}
			})
			th.Barrier()
			th.TaskWait()
		}, WithNumThreads(4))

		if ran.Load() != ntasks {
			t.Fatalf("ran %d tasks, want %d", ran.Load(), ntasks)
		}
		got := countEvents(stream)
		if got["span:omp/task"] != ntasks {
			t.Errorf("task spans = %d, want %d", got["span:omp/task"], ntasks)
		}
		// The region fold surfaces the task counters process-wide, and they
		// agree with the spans in the stream.
		snap := col.Counters().Snapshot()
		if snap["omp.tasks.spawned"] != ntasks || snap["omp.tasks.executed"] != ntasks {
			t.Errorf("spawned/executed = %d/%d, want %d each",
				snap["omp.tasks.spawned"], snap["omp.tasks.executed"], ntasks)
		}
		// Steal instants in the stream match the folded steal counter.
		if int64(got["instant:omp/steal"]) != snap["omp.tasks.stolen"] {
			t.Errorf("steal instants = %d, omp.tasks.stolen = %d",
				got["instant:omp/steal"], snap["omp.tasks.stolen"])
		}
	})
}

// TaskStats must report the same numbers whether or not a collector is
// installed — it is a view over the scheduler's counter set either way.
func TestTaskStatsEquivalentWithTelemetryEnabled(t *testing.T) {
	run := func() TaskStats {
		const ntasks = 50
		var stats TaskStats
		Parallel(func(th *Thread) {
			th.Master(func() {
				for i := 0; i < ntasks; i++ {
					th.Task(func() {})
				}
			})
			th.Barrier()
			th.TaskWait()
			th.Barrier()
			th.Master(func() { stats = th.TaskStats() })
		}, WithNumThreads(2))
		return stats
	}

	plain := run()
	var instrumented TaskStats
	withCollector(t, func(*telemetry.Collector, *telemetry.Stream) {
		instrumented = run()
	})
	if plain.Spawned != instrumented.Spawned || plain.Executed != instrumented.Executed {
		t.Errorf("TaskStats diverged: plain=%+v instrumented=%+v", plain, instrumented)
	}
	if plain.Spawned != 50 || plain.Executed != 50 {
		t.Errorf("TaskStats = %+v, want 50 spawned and executed", plain)
	}
}

// With telemetry off (the default), regions must emit nothing and leave
// no collector attached to recycled teams.
func TestTelemetryDisabledEmitsNothing(t *testing.T) {
	stream := &telemetry.Stream{}
	col := telemetry.New(telemetry.WithSink(stream))
	// Enabled region, then a disabled one reusing the pooled team.
	telemetry.Enable(col)
	Parallel(func(th *Thread) {}, WithNumThreads(2))
	telemetry.Disable()
	before := stream.Len()
	Parallel(func(th *Thread) {
		th.Barrier()
		th.Master(func() { th.Task(func() {}) })
		th.TaskWait()
	}, WithNumThreads(2))
	if stream.Len() != before {
		t.Fatalf("disabled run emitted %d events", stream.Len()-before)
	}
}
