package omp

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// The serving layer's timeout guarantee (DESIGN.md §8): once a region's
// context fires, the region returns within 2× the poll interval — here,
// the duration of one taskloop chunk, since cancellation is polled at
// every chunk/task boundary and per iteration inside taskloop bodies.
func TestWithContextCancelsTaskloopWithinTwoPolls(t *testing.T) {
	const (
		iters    = 64
		iterDur  = 50 * time.Millisecond // one chunk == one iteration (grain 1)
		maxAfter = 2 * iterDur
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var ran atomic.Int64
	done := make(chan time.Time, 1)
	go func() {
		Parallel(func(th *Thread) {
			// Taskloop is not a worksharing construct: one thread
			// encounters it, the team helps through the task scheduler.
			th.SingleNoWait(func() {
				th.Taskloop(0, iters, 1, func(int) {
					ran.Add(1)
					time.Sleep(iterDur)
				})
			})
		}, WithNumThreads(4), WithContext(ctx))
		done <- time.Now()
	}()

	// Let the loop get going, then fire the context mid-run.
	time.Sleep(iterDur + iterDur/2)
	cancelled := time.Now()
	cancel()

	select {
	case ret := <-done:
		if late := ret.Sub(cancelled); late > maxAfter {
			t.Errorf("region returned %v after cancel, want <= %v (2x one chunk)", late, maxAfter)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled taskloop region never returned")
	}
	if n := ran.Load(); n >= iters {
		t.Errorf("all %d iterations ran despite mid-run cancellation", n)
	}
}

// An already-expired context runs the region pre-cancelled: worksharing
// schedules dispense nothing, taskloops queue nothing, and the body sees
// Cancelled() immediately.
func TestWithContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	var loopIters, taskIters atomic.Int64
	Parallel(func(th *Thread) {
		if !th.Cancelled() {
			t.Error("Cancelled() = false inside a region whose context expired before the fork")
		}
		th.For(0, 100, Dynamic(1), func(int) { loopIters.Add(1) })
		th.Taskloop(0, 100, 1, func(int) { taskIters.Add(1) })
	}, WithNumThreads(4), WithContext(ctx))

	if n := loopIters.Load(); n != 0 {
		t.Errorf("dynamic loop ran %d iterations in a pre-cancelled region, want 0", n)
	}
	if n := taskIters.Load(); n != 0 {
		t.Errorf("taskloop ran %d iterations in a pre-cancelled region, want 0", n)
	}
}

// Cancellation stops every worksharing schedule at a chunk boundary; the
// iterations that did run remain exactly-once (no chunk is both dropped
// and executed).
func TestWithContextCancelStopsSchedules(t *testing.T) {
	for _, tc := range []struct {
		name  string
		sched Schedule
	}{
		{"dynamic", Dynamic(1)},
		{"guided", Guided(1)},
		{"static-chunk", StaticChunk(1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			const iters = 1000
			seen := make([]atomic.Int32, iters)
			Parallel(func(th *Thread) {
				th.For(0, iters, tc.sched, func(i int) {
					if i == 5 { // cancel is idempotent; whichever thread draws i=5 fires it
						cancel()
					}
					seen[i].Add(1)
					time.Sleep(time.Millisecond)
				})
			}, WithNumThreads(4), WithContext(ctx))
			total := 0
			for i := range seen {
				switch n := seen[i].Load(); n {
				case 0:
				case 1:
					total++
				default:
					t.Fatalf("iteration %d ran %d times", i, n)
				}
			}
			if total == iters {
				t.Errorf("%s: all %d iterations ran despite cancellation", tc.name, iters)
			}
			if total == 0 {
				t.Errorf("%s: no iterations ran before cancellation", tc.name)
			}
		})
	}
}

// A context that cannot fire leaves the region on the uncancellable path:
// every iteration runs and Cancelled() stays false.
func TestWithContextBackgroundRunsToCompletion(t *testing.T) {
	var iters atomic.Int64
	Parallel(func(th *Thread) {
		if th.Cancelled() {
			t.Error("Cancelled() = true under context.Background()")
		}
		th.For(0, 100, Dynamic(7), func(int) { iters.Add(1) })
		th.SingleNoWait(func() {
			th.Taskloop(0, 100, 0, func(int) { iters.Add(1) })
		})
	}, WithNumThreads(4), WithContext(context.Background()))
	if n := iters.Load(); n != 200 {
		t.Errorf("ran %d iterations under Background context, want 200", n)
	}
}

// A cancelled region must not poison later regions: teams with watchers
// are not recycled, and a fresh region starts uncancelled.
func TestCancelledTeamNotReused(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	Parallel(func(th *Thread) {}, WithNumThreads(4), WithContext(ctx))

	var iters atomic.Int64
	Parallel(func(th *Thread) {
		if th.Cancelled() {
			t.Error("fresh region inherited a cancelled flag")
		}
		th.For(0, 100, Dynamic(1), func(int) { iters.Add(1) })
	}, WithNumThreads(4))
	if n := iters.Load(); n != 100 {
		t.Errorf("region after a cancelled one ran %d/100 iterations", n)
	}
}
