package omp

import (
	"fmt"
	"sync"
)

// Schedule selects how a worksharing loop's iterations are divided among
// the team, mirroring OpenMP's schedule clause. The paper's Parallel Loop
// patternlets contrast "equal chunks" (schedule(static)) with "chunks of 1"
// (schedule(static,1)) and dynamic scheduling.
type Schedule struct {
	kind  scheduleKind
	chunk int
}

type scheduleKind int

const (
	schedStaticEqual scheduleKind = iota
	schedStaticChunk
	schedDynamic
	schedGuided
)

// StaticEqual divides iterations into one contiguous block per thread, the
// default OpenMP static schedule and the division used by
// parallelLoopEqualChunks.c (Figures 13–18): thread id gets iterations
// [id*ceil(n/p), min((id+1)*ceil(n/p), n)).
func StaticEqual() Schedule { return Schedule{kind: schedStaticEqual} }

// StaticChunk assigns fixed-size chunks round-robin: with chunk 1 this is
// the striped "chunks of 1" schedule of parallelLoopChunksOf1.c. A chunk
// below 1 is treated as 1.
func StaticChunk(chunk int) Schedule {
	if chunk < 1 {
		chunk = 1
	}
	return Schedule{kind: schedStaticChunk, chunk: chunk}
}

// Dynamic hands out chunks on demand from a shared counter, like
// schedule(dynamic,chunk): faster threads grab more work, which balances
// irregular iterations. A chunk below 1 is treated as 1.
func Dynamic(chunk int) Schedule {
	if chunk < 1 {
		chunk = 1
	}
	return Schedule{kind: schedDynamic, chunk: chunk}
}

// Guided hands out exponentially shrinking chunks — remaining/p, floored at
// minChunk — like schedule(guided,minChunk).
func Guided(minChunk int) Schedule {
	if minChunk < 1 {
		minChunk = 1
	}
	return Schedule{kind: schedGuided, chunk: minChunk}
}

// String names the schedule in OpenMP clause syntax.
func (s Schedule) String() string {
	switch s.kind {
	case schedStaticEqual:
		return "static"
	case schedStaticChunk:
		return fmt.Sprintf("static,%d", s.chunk)
	case schedDynamic:
		return fmt.Sprintf("dynamic,%d", s.chunk)
	case schedGuided:
		return fmt.Sprintf("guided,%d", s.chunk)
	}
	return "unknown"
}

// EqualChunkBounds returns the [start, stop) iteration range a given task
// receives under the equal-chunks division of n iterations over p tasks.
// It is exported because the MPI parallel-loop patternlet implements the
// same arithmetic by hand (Figure 16), and tests verify both against it.
func EqualChunkBounds(n, p, id int) (start, stop int) {
	if p < 1 || id < 0 || id >= p || n <= 0 {
		return 0, 0
	}
	chunk := (n + p - 1) / p // ceil(n/p), as in the paper's ceil() call
	start = id * chunk
	stop = start + chunk
	if id == p-1 || stop > n {
		stop = n
	}
	if start > n {
		start = n
		stop = n
	}
	return start, stop
}

// dynCounter is the shared chunk dispenser for dynamic schedules and
// sections.
type dynCounter struct {
	mu  sync.Mutex
	pos int
}

// next claims `chunk` consecutive indices below limit and returns the first;
// a return >= limit means no work remains.
func (d *dynCounter) next(chunk, limit int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	i := d.pos
	if i < limit {
		d.pos += chunk
		if d.pos > limit {
			d.pos = limit
		}
	}
	return i
}

// guidedCounter dispenses exponentially shrinking chunks.
type guidedCounter struct {
	mu       sync.Mutex
	next     int
	limit    int
	parties  int
	minChunk int
}

// grab returns the next [start, stop) block, or ok=false when exhausted.
func (g *guidedCounter) grab() (start, stop int, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	remaining := g.limit - g.next
	if remaining <= 0 {
		return 0, 0, false
	}
	chunk := remaining / g.parties
	if chunk < g.minChunk {
		chunk = g.minChunk
	}
	if chunk > remaining {
		chunk = remaining
	}
	start = g.next
	g.next += chunk
	return start, g.next, true
}

// For is a worksharing loop over iterations [lo, hi) inside a parallel
// region (#pragma omp for schedule(...)). Every thread in the team must
// call For with identical arguments; each iteration executes exactly once
// on some thread; an implicit barrier follows.
func (t *Thread) For(lo, hi int, sched Schedule, body func(i int)) {
	t.ForNoWait(lo, hi, sched, body)
	t.Barrier()
}

// ForNoWait is For with the nowait clause: no trailing barrier.
func (t *Thread) ForNoWait(lo, hi int, sched Schedule, body func(i int)) {
	idx := t.nextConstruct()
	n := hi - lo
	if n < 0 {
		n = 0
	}
	p := t.team.size
	switch sched.kind {
	case schedStaticEqual:
		start, stop := EqualChunkBounds(n, p, t.id)
		for i := start; i < stop; i++ {
			body(lo + i)
		}
	case schedStaticChunk:
		// Blocks of size chunk assigned round-robin by block index.
		for blockStart := t.id * sched.chunk; blockStart < n; blockStart += p * sched.chunk {
			blockStop := blockStart + sched.chunk
			if blockStop > n {
				blockStop = n
			}
			for i := blockStart; i < blockStop; i++ {
				body(lo + i)
			}
		}
	case schedDynamic:
		st := t.team.construct(idx, func() any { return &dynCounter{} }).(*dynCounter)
		for {
			start := st.next(sched.chunk, n)
			if start >= n {
				break
			}
			stop := start + sched.chunk
			if stop > n {
				stop = n
			}
			for i := start; i < stop; i++ {
				body(lo + i)
			}
		}
	case schedGuided:
		st := t.team.construct(idx, func() any {
			return &guidedCounter{limit: n, parties: p, minChunk: sched.chunk}
		}).(*guidedCounter)
		for {
			start, stop, ok := st.grab()
			if !ok {
				break
			}
			for i := start; i < stop; i++ {
				body(lo + i)
			}
		}
	}
}

// ParallelFor forks a team, runs a worksharing loop over [0, n), and joins
// — the fused #pragma omp parallel for. The body receives the iteration
// index and the executing thread's id.
func ParallelFor(n int, sched Schedule, body func(i, tid int), opts ...Option) {
	Parallel(func(t *Thread) {
		t.For(0, n, sched, func(i int) { body(i, t.ThreadNum()) })
	}, opts...)
}
