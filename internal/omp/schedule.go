package omp

import (
	"fmt"
	"sync/atomic"
)

// Schedule selects how a worksharing loop's iterations are divided among
// the team, mirroring OpenMP's schedule clause. The paper's Parallel Loop
// patternlets contrast "equal chunks" (schedule(static)) with "chunks of 1"
// (schedule(static,1)) and dynamic scheduling.
type Schedule struct {
	kind  scheduleKind
	chunk int
}

type scheduleKind int

const (
	schedStaticEqual scheduleKind = iota
	schedStaticChunk
	schedDynamic
	schedGuided
)

// StaticEqual divides iterations into one contiguous block per thread, the
// default OpenMP static schedule and the division used by
// parallelLoopEqualChunks.c (Figures 13–18): thread id gets iterations
// [id*ceil(n/p), min((id+1)*ceil(n/p), n)).
func StaticEqual() Schedule { return Schedule{kind: schedStaticEqual} }

// StaticChunk assigns fixed-size chunks round-robin: with chunk 1 this is
// the striped "chunks of 1" schedule of parallelLoopChunksOf1.c. A chunk
// below 1 is treated as 1.
func StaticChunk(chunk int) Schedule {
	if chunk < 1 {
		chunk = 1
	}
	return Schedule{kind: schedStaticChunk, chunk: chunk}
}

// Dynamic hands out chunks on demand from a shared counter, like
// schedule(dynamic,chunk): faster threads grab more work, which balances
// irregular iterations. A chunk below 1 is treated as 1.
func Dynamic(chunk int) Schedule {
	if chunk < 1 {
		chunk = 1
	}
	return Schedule{kind: schedDynamic, chunk: chunk}
}

// Guided hands out exponentially shrinking chunks — remaining/p, floored at
// minChunk — like schedule(guided,minChunk).
func Guided(minChunk int) Schedule {
	if minChunk < 1 {
		minChunk = 1
	}
	return Schedule{kind: schedGuided, chunk: minChunk}
}

// String names the schedule in OpenMP clause syntax.
func (s Schedule) String() string {
	switch s.kind {
	case schedStaticEqual:
		return "static"
	case schedStaticChunk:
		return fmt.Sprintf("static,%d", s.chunk)
	case schedDynamic:
		return fmt.Sprintf("dynamic,%d", s.chunk)
	case schedGuided:
		return fmt.Sprintf("guided,%d", s.chunk)
	}
	return "unknown"
}

// EqualChunkBounds returns the [start, stop) iteration range a given task
// receives under the equal-chunks division of n iterations over p tasks.
// It is exported because the MPI parallel-loop patternlet implements the
// same arithmetic by hand (Figure 16), and tests verify both against it.
func EqualChunkBounds(n, p, id int) (start, stop int) {
	if p < 1 || id < 0 || id >= p || n <= 0 {
		return 0, 0
	}
	chunk := (n + p - 1) / p // ceil(n/p), as in the paper's ceil() call
	start = id * chunk
	stop = start + chunk
	if id == p-1 || stop > n {
		stop = n
	}
	if start > n {
		start = n
		stop = n
	}
	return start, stop
}

// dynCounter is the shared chunk dispenser for dynamic schedules and
// sections: a single atomic fetch-add per claimed chunk, so contending
// threads never serialize on a lock. The cursor may overshoot limit by at
// most one chunk per thread (each thread stops after its first failed
// claim); callers clamp the block they actually execute to limit.
type dynCounter struct {
	pos atomic.Int64
}

// next claims `chunk` consecutive indices below limit and returns the first;
// a return >= limit means no work remains.
func (d *dynCounter) next(chunk, limit int) int {
	i := d.pos.Add(int64(chunk)) - int64(chunk)
	if i >= int64(limit) {
		return limit
	}
	return int(i)
}

// guidedCounter dispenses exponentially shrinking chunks with a lock-free
// compare-and-swap claim. parties and minChunk are fixed (and sanitized)
// once at creation; grab only advances the cursor.
type guidedCounter struct {
	next     atomic.Int64
	limit    int
	parties  int
	minChunk int
}

func newGuidedCounter(limit, parties, minChunk int) *guidedCounter {
	if parties < 1 {
		parties = 1
	}
	if minChunk < 1 {
		minChunk = 1
	}
	return &guidedCounter{limit: limit, parties: parties, minChunk: minChunk}
}

// grab returns the next [start, stop) block, or ok=false when exhausted.
// The chunk is remaining/parties floored at minChunk, and always clamped
// to the work actually remaining — at the tail, where remaining/parties
// rounds to 0 and minChunk exceeds remaining, the final chunk is exactly
// the remainder rather than overshooting past limit.
func (g *guidedCounter) grab() (start, stop int, ok bool) {
	for {
		cur := g.next.Load()
		remaining := g.limit - int(cur)
		if remaining <= 0 {
			return 0, 0, false
		}
		chunk := remaining / g.parties
		if chunk < g.minChunk {
			chunk = g.minChunk
		}
		if chunk > remaining {
			chunk = remaining
		}
		if g.next.CompareAndSwap(cur, cur+int64(chunk)) {
			return int(cur), int(cur) + chunk, true
		}
	}
}

// ForRange is the block-granular worksharing loop over [lo, hi) inside a
// parallel region: instead of one indirect call per iteration, the body is
// invoked once per contiguous [start, stop) block the schedule assigns to
// this thread, and iterates the block itself in a tight local loop. This
// is the fast path the matrix kernels and exemplars use; For is a
// per-iteration convenience wrapper over it. Every thread in the team must
// call ForRange with identical arguments; the blocks passed to body are
// non-empty and an implicit barrier follows.
func (t *Thread) ForRange(lo, hi int, sched Schedule, body func(start, stop int)) {
	t.ForRangeNoWait(lo, hi, sched, body)
	t.Barrier()
}

// ForRangeNoWait is ForRange with the nowait clause: no trailing barrier.
func (t *Thread) ForRangeNoWait(lo, hi int, sched Schedule, body func(start, stop int)) {
	idx := t.nextConstruct()
	n := hi - lo
	if n < 0 {
		n = 0
	}
	p := t.team.size
	// Cancellation is polled once per dispensed block — the "poll
	// interval" the serving layer's timeout guarantee is stated against:
	// after the region's context fires, a thread runs at most the block it
	// already claimed before it stops taking work.
	switch sched.kind {
	case schedStaticEqual:
		if t.team.canceled() {
			return
		}
		start, stop := EqualChunkBounds(n, p, t.id)
		if start < stop {
			body(lo+start, lo+stop)
		}
	case schedStaticChunk:
		// Blocks of size chunk assigned round-robin by block index.
		for blockStart := t.id * sched.chunk; blockStart < n; blockStart += p * sched.chunk {
			if t.team.canceled() {
				return
			}
			blockStop := min(blockStart+sched.chunk, n)
			body(lo+blockStart, lo+blockStop)
		}
	case schedDynamic:
		st := t.team.construct(idx, func() any { return &dynCounter{} }).(*dynCounter)
		for {
			if t.team.canceled() {
				return
			}
			start := st.next(sched.chunk, n)
			if start >= n {
				break
			}
			body(lo+start, lo+min(start+sched.chunk, n))
		}
	case schedGuided:
		st := t.team.construct(idx, func() any {
			return newGuidedCounter(n, p, sched.chunk)
		}).(*guidedCounter)
		for {
			if t.team.canceled() {
				return
			}
			start, stop, ok := st.grab()
			if !ok {
				break
			}
			body(lo+start, lo+stop)
		}
	}
}

// For is a worksharing loop over iterations [lo, hi) inside a parallel
// region (#pragma omp for schedule(...)). Every thread in the team must
// call For with identical arguments; each iteration executes exactly once
// on some thread; an implicit barrier follows. It is implemented on top of
// ForRange: the schedule hands out contiguous blocks and the wrapper
// expands each block into per-iteration body calls, so both APIs share one
// scheduling engine and execute identical iteration sets.
func (t *Thread) For(lo, hi int, sched Schedule, body func(i int)) {
	t.ForNoWait(lo, hi, sched, body)
	t.Barrier()
}

// ForNoWait is For with the nowait clause: no trailing barrier.
func (t *Thread) ForNoWait(lo, hi int, sched Schedule, body func(i int)) {
	t.ForRangeNoWait(lo, hi, sched, func(start, stop int) {
		for i := start; i < stop; i++ {
			body(i)
		}
	})
}

// ParallelFor forks a team, runs a worksharing loop over [0, n), and joins
// — the fused #pragma omp parallel for. The body receives the iteration
// index and the executing thread's id.
func ParallelFor(n int, sched Schedule, body func(i, tid int), opts ...Option) {
	Parallel(func(t *Thread) {
		t.For(0, n, sched, func(i int) { body(i, t.ThreadNum()) })
	}, opts...)
}

// ParallelForRange forks a team, workshares [0, n) at block granularity,
// and joins — the fused parallel-for for tight loops. The body receives
// each assigned contiguous [start, stop) block and the executing thread's
// id.
func ParallelForRange(n int, sched Schedule, body func(start, stop, tid int), opts ...Option) {
	Parallel(func(t *Thread) {
		t.ForRange(0, n, sched, func(start, stop int) { body(start, stop, t.ThreadNum()) })
	}, opts...)
}
