package omp

import "sync"

// Explicit tasking, OpenMP 3.0's #pragma omp task / taskwait. The paper's
// collection predates task patternlets, but tasks are the natural next
// construct in the same curriculum (recursive Fork-Join workloads like the
// CS2 merge-sort session), so the runtime supports them as an extension.
//
// Semantics follow OpenMP: a task may be executed by any thread of the
// team, immediately or deferred; TaskWait blocks until all tasks created
// by the *current* task region (here: by the whole team since the last
// sync point) have finished. The end of the parallel region is an
// implicit taskwait — Parallel does not return while tasks are pending.

// taskPool is per-team shared state tracking outstanding tasks.
type taskPool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []func()
	active  int // tasks currently running
}

func (tp *taskPool) init() {
	if tp.cond == nil {
		tp.cond = sync.NewCond(&tp.mu)
	}
}

// pool lazily creates the team's task pool.
func (tm *team) pool() *taskPool {
	tm.constructMu.Lock()
	defer tm.constructMu.Unlock()
	if tm.tasks == nil {
		tm.tasks = &taskPool{}
		tm.tasks.init()
	}
	return tm.tasks
}

// Task submits fn for execution by some thread of the team
// (#pragma omp task). The submitting thread may execute it itself during
// TaskWait; otherwise any thread draining the pool picks it up.
func (t *Thread) Task(fn func()) {
	tp := t.team.pool()
	tp.mu.Lock()
	tp.pending = append(tp.pending, fn)
	tp.mu.Unlock()
	tp.cond.Broadcast()
}

// TaskWait executes and waits for outstanding tasks until the pool is
// empty and no task is still running (#pragma omp taskwait). The calling
// thread participates in the work (task stealing degenerates to a shared
// queue here, which is fine at teaching scale).
func (t *Thread) TaskWait() {
	tp := t.team.pool()
	tp.mu.Lock()
	for {
		if len(tp.pending) > 0 {
			fn := tp.pending[len(tp.pending)-1]
			tp.pending = tp.pending[:len(tp.pending)-1]
			tp.active++
			tp.mu.Unlock()
			fn()
			tp.mu.Lock()
			tp.active--
			if len(tp.pending) == 0 && tp.active == 0 {
				tp.cond.Broadcast()
			}
			continue
		}
		if tp.active == 0 {
			tp.mu.Unlock()
			return
		}
		tp.cond.Wait()
	}
}

// drainTasks is the implicit taskwait at region end: the master calls it
// after the body joins so no submitted task is lost.
func (tm *team) drainTasks() {
	tm.constructMu.Lock()
	tp := tm.tasks
	tm.constructMu.Unlock()
	if tp == nil {
		return
	}
	tp.mu.Lock()
	for {
		if len(tp.pending) > 0 {
			fn := tp.pending[len(tp.pending)-1]
			tp.pending = tp.pending[:len(tp.pending)-1]
			tp.active++
			tp.mu.Unlock()
			fn()
			tp.mu.Lock()
			tp.active--
			continue
		}
		if tp.active == 0 {
			tp.mu.Unlock()
			return
		}
		tp.cond.Wait()
	}
}

// Ordered executes fn for loop iteration i strictly in ascending iteration
// order across the team, like #pragma omp ordered inside a loop with the
// ordered clause. Every iteration of the enclosing For must call Ordered
// exactly once, passing its own index; lo and hi must match the loop
// bounds.
type OrderedRegion struct {
	mu   sync.Mutex
	cond *sync.Cond
	next int
	hi   int
}

// NewOrdered creates the shared ordered-region state for a loop over
// [lo, hi).
func NewOrdered(lo, hi int) *OrderedRegion {
	o := &OrderedRegion{next: lo, hi: hi}
	o.cond = sync.NewCond(&o.mu)
	return o
}

// Do blocks until every iteration below i has completed its ordered
// section, runs fn, and releases iteration i+1.
func (o *OrderedRegion) Do(i int, fn func()) {
	o.mu.Lock()
	for o.next != i {
		o.cond.Wait()
	}
	o.mu.Unlock()
	fn()
	o.mu.Lock()
	o.next = i + 1
	o.cond.Broadcast()
	o.mu.Unlock()
}

// TaskYield executes one pending task if any is available and reports
// whether it did — a task scheduling point. Code that blocks waiting for
// a specific child task (recursive fork-join) should help-first via
// TaskYield in its wait loop, so the team cannot deadlock with every
// thread blocked while work sits in the pool.
func (t *Thread) TaskYield() bool {
	tp := t.team.pool()
	tp.mu.Lock()
	if len(tp.pending) == 0 {
		tp.mu.Unlock()
		return false
	}
	fn := tp.pending[len(tp.pending)-1]
	tp.pending = tp.pending[:len(tp.pending)-1]
	tp.active++
	tp.mu.Unlock()
	fn()
	tp.mu.Lock()
	tp.active--
	if len(tp.pending) == 0 && tp.active == 0 {
		tp.cond.Broadcast()
	}
	tp.mu.Unlock()
	return true
}
