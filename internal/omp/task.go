package omp

// Explicit tasking, OpenMP 3.0's #pragma omp task / taskwait. The paper's
// collection predates task patternlets, but tasks are the natural next
// construct in the same curriculum (recursive Fork-Join workloads like the
// CS2 merge-sort session), so the runtime supports them as an extension.
//
// The implementation is a per-thread work-stealing scheduler — deque.go
// for the data structure, sched.go for the stealing/idling protocol,
// taskgroup.go for scoped waiting. This file is the thin OpenMP-shaped
// surface over it.
//
// Ownership contract: a Thread handle is bound to the goroutine running
// it — the region body, or a task body that received it as its *Thread
// parameter. Task, TaskWait, TaskYield and the taskgroup constructs must
// be called through the calling goroutine's own handle; submitting
// through another thread's captured handle would race on its deque. Code
// inside a task that wants to spawn or wait uses the *Thread its body
// received (TaskGroup tasks), which is always the executing thread.

// Task submits fn for deferred execution (#pragma omp task). The task
// lands on the calling thread's own deque and is normally executed by
// the caller during its next TaskWait — LIFO, cache-warm — unless an
// idle teammate steals it first.
func (t *Thread) Task(fn func()) {
	t.sched.submit(t.id, task{fn: fn, node: &t.node})
}

// TaskWait executes and waits for the tasks this thread submitted with
// Task (#pragma omp taskwait: the calling task region's children — not,
// as an earlier version of this runtime had it, every task the team ever
// submitted; tasks spawned by other threads are covered by their own
// TaskWait, by a shared TaskGroup, or by the region-end implicit
// taskwait). The caller drains its own deque and, if children were
// stolen, helps the team's other work until they finish.
func (t *Thread) TaskWait() {
	t.sched.drainOwn(t)
	if t.node.state.Load() == 0 {
		return
	}
	t.sched.waitNodeZero(t, &t.node)
}

// TaskYield executes one pending task if any is runnable and reports
// whether it did — a task scheduling point (#pragma omp taskyield). The
// caller's own deque is preferred; otherwise one steal sweep is made.
func (t *Thread) TaskYield() bool {
	d := &t.sched.deques[t.id]
	if tk, ok := d.popOne(); ok {
		t.sched.run(t, tk, false)
		return true
	}
	return t.sched.stealOnce(t)
}

// drainTasks is the implicit taskwait at region end: the master calls it
// after the join, so no submitted task is lost even if a thread exited
// the body without waiting.
func (tm *team) drainTasks() {
	s := tm.sched
	if s == nil {
		return
	}
	// Fast path: nothing was ever spawned anywhere.
	busy := false
	for i := range s.deques[:s.size] {
		if s.deques[i].pushed != 0 {
			busy = true
			break
		}
	}
	if !busy {
		return
	}
	s.drainAll(&tm.threads[0])
}
