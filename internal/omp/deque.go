package omp

import (
	"sync"
	"sync/atomic"
)

// Per-thread work-stealing deques, the data structure under the task
// runtime (see sched.go for the scheduler built on top, and DESIGN.md §6
// for the protocol write-up).
//
// Each team member owns one deque. The owner pushes and pops at the
// *bottom* (LIFO — the most recently spawned task is the hottest in
// cache, and in recursive decomposition it is also the smallest), while
// thieves take from the *top* (FIFO — the oldest task is the largest
// remaining subtree, so one steal moves half the work). The layout is
// the classic Chase-Lev deque with two twists that fit this runtime:
//
//  1. Value slots. Tasks are small structs stored by value in the ring,
//     so the hot path allocates nothing. The torn-read hazard this
//     creates for thieves (a thief speculatively reads a multi-word slot
//     before winning the top CAS) is excluded by construction: the ring
//     grows while one slack slot remains, so an in-flight push can never
//     alias a slot a thief may still be reading, and after a grow the
//     owner never writes the old array again.
//
//  2. Deferred bottom publication. The owner appends through a plain
//     shadow index (botLocal) and publishes to the atomic bottom only
//     every publishGrain pushes — or immediately when some team member
//     is idle (sched.nidle > 0). This keeps the common push at a plain
//     slot write plus one branch; the seq-cst store that Chase-Lev pays
//     per push is amortized away whenever nobody is starving. Work that
//     is not yet published is invisible to thieves but always reachable
//     by the owner, and the owner publishes on every scheduling point
//     that can block (wait loops, parking, region-body exit), so no task
//     can be stranded.
//
// Thieves additionally serialize on a per-deque mutex (stealMu). With at
// most one thief per deque at a time the lock-free subtlety is confined
// to the owner/thief pair, and the owner can claim the whole published
// range wholesale under the same mutex (claim), which is what makes the
// drain side of TaskWait nearly free per task.

// task is one deferred unit of work. Exactly one of fn/exec is set: fn
// is the plain #pragma-omp-task closure, exec additionally receives the
// thread that ends up running the task (the handle recursive code must
// use to spawn further tasks from inside a task body).
type task struct {
	fn      func()
	exec    func(*Thread)
	node    *waitNode
	counted bool // node was incremented at submit (taskgroup tasks)
}

// taskRing is one generation of a deque's storage; the deque swaps in a
// doubled ring when full. len(slots) is always a power of two.
type taskRing struct {
	slots []task
	mask  int64
}

// Defaults: rings start small and double; a ring that grew huge during a
// burst is dropped at region reset instead of being zeroed.
const (
	dequeInitialSize = 64
	dequeRetainSize  = 8192
	publishGrain     = 16
	claimBatch       = 256
)

// taskDeque is one thread's deque plus its owner-local scheduling state.
// Fields in the "owner-only" group are touched exclusively by the owning
// thread's goroutine (enforced by the Thread.Task contract, task.go), so
// they need no synchronization; cross-thread readers see pushes only
// through the top/bot atomics, whose publication orders the plain slot
// writes before them.
type taskDeque struct {
	buf     atomic.Pointer[taskRing]
	top     atomic.Int64 // next slot thieves take; only ever increases
	bot     atomic.Int64 // published bottom: slots [top, bot) are stealable
	stealMu sync.Mutex   // serializes thieves (and claim) on this deque

	// Owner-only state.
	botLocal int64  // true bottom; >= bot
	lastPub  int64  // value of bot last published
	topCache int64  // stale copy of top, refreshed when the ring looks full
	draining bool   // a wholesale claim batch is being executed (reentrancy)
	scratch  []task // claim buffer, reused across batches

	// Counters for TaskStats. pushed/ran are owner-only plain fields;
	// stole counts successful steals *performed by* this deque's owner
	// (also owner-goroutine-only). They are only meaningful at a
	// quiescent point — after a Barrier or once Parallel returns.
	pushed int64
	ran    int64
	stole  int64

	_ [24]byte // keep adjacent deques off each other's cache lines
}

// push appends a task at the bottom. Owner only.
func (d *taskDeque) push(tk task) {
	b := d.botLocal
	r := d.buf.Load()
	if r == nil || b-d.topCache >= int64(len(r.slots))-1 {
		d.topCache = d.top.Load()
		if r == nil || b-d.topCache >= int64(len(r.slots))-1 {
			r = d.grow(r, b)
		}
	}
	r.slots[b&r.mask] = tk
	d.botLocal = b + 1
	d.pushed++
}

// grow doubles the ring, copying the live range [top, botLocal). The old
// array is never written again, so a thief holding a stale ring pointer
// reads consistent (if already-copied) values; the top CAS still
// arbitrates ownership of each element exactly once.
func (d *taskDeque) grow(old *taskRing, b int64) *taskRing {
	n := dequeInitialSize
	if old != nil {
		n = len(old.slots) * 2
	}
	r := &taskRing{slots: make([]task, n), mask: int64(n - 1)}
	if old != nil {
		for i := d.topCache; i < b; i++ {
			r.slots[i&r.mask] = old.slots[i&old.mask]
		}
	}
	d.buf.Store(r)
	return r
}

// publish makes everything pushed so far visible to thieves. Owner only;
// called on every scheduling point that may block, and periodically from
// push via maybePublish.
func (d *taskDeque) publish() {
	if d.botLocal != d.lastPub {
		d.bot.Store(d.botLocal)
		d.lastPub = d.botLocal
	}
}

// size returns the owner's view of how many tasks are queued.
func (d *taskDeque) size() int64 { return d.botLocal - d.topCache }

// popOne takes the most recently pushed task — the standard Chase-Lev
// owner pop, used on reentrant drains and TaskYield. Owner only.
func (d *taskDeque) popOne() (task, bool) {
	b := d.botLocal - 1
	if b < d.topCache {
		return task{}, false
	}
	// Publish the decremented bottom before inspecting top: this is the
	// store-load fence that arbitrates the last element against thieves.
	d.botLocal = b
	d.bot.Store(b)
	d.lastPub = b
	t := d.top.Load()
	d.topCache = t
	if t > b { // deque was already empty
		d.botLocal = b + 1
		d.bot.Store(b + 1)
		d.lastPub = b + 1
		return task{}, false
	}
	r := d.buf.Load()
	tk := r.slots[b&r.mask]
	if t == b { // last element: race the thief for it
		won := d.top.CompareAndSwap(t, t+1)
		d.botLocal = b + 1
		d.bot.Store(b + 1)
		d.lastPub = b + 1
		if won {
			d.topCache = t + 1
		}
		if !won {
			return task{}, false
		}
	}
	return tk, true
}

// claim transfers up to claimBatch queued tasks into the scratch buffer
// and returns them, oldest first. Owner only. Holding stealMu excludes
// thieves for the duration, so the copied range is claimed with plain
// stores; the copy happens before top moves, so tasks the owner pushes
// while later executing the batch cannot overwrite unexecuted entries.
func (d *taskDeque) claim() []task {
	if d.botLocal == d.topCache {
		d.topCache = d.top.Load()
		if d.botLocal == d.topCache {
			return nil
		}
	}
	d.stealMu.Lock()
	t := d.top.Load()
	b := d.botLocal
	if t >= b {
		d.stealMu.Unlock()
		d.topCache = t
		return nil
	}
	n := b - t
	if n > claimBatch {
		n = claimBatch
	}
	if int64(cap(d.scratch)) < n {
		d.scratch = make([]task, n)
	}
	s := d.scratch[:n]
	r := d.buf.Load()
	for i := int64(0); i < n; i++ {
		s[i] = r.slots[(t+i)&r.mask]
	}
	d.top.Store(t + n)
	if pub := t + n; pub > d.lastPub {
		// A partial claim leaves [t+n, botLocal) queued; moving bot up to
		// the new top keeps the published window well-formed (top <= bot
		// <= botLocal holds because n was clamped to the queued count).
		d.bot.Store(pub)
		d.lastPub = pub
	}
	d.stealMu.Unlock()
	d.topCache = t + n
	return s
}

// steal takes the oldest published task from this deque on behalf of
// another thread. Any goroutine may call it; stealMu admits one thief at
// a time. The speculative slot read is validated by the top CAS — on a
// lost race (against the owner's popOne taking the last element) the
// read value is discarded.
//
// An uncounted task's node is incremented *before* the CAS: the instant
// top moves, the submitter can observe its deque empty, and it must not
// also observe the node at zero while the stolen task is still in
// flight (both operations are seq-cst, so a submitter that sees the
// moved top sees the increment too). A lost CAS means the owner ran the
// task itself, so the increment must be undone — that settle is returned
// to the caller, because taking the node back to zero may have to wake a
// waiter parked on it.
func (d *taskDeque) steal() (tk task, ok bool, undo *waitNode) {
	d.stealMu.Lock()
	t := d.top.Load()
	b := d.bot.Load()
	if t >= b {
		d.stealMu.Unlock()
		return task{}, false, nil
	}
	r := d.buf.Load()
	tk = r.slots[t&r.mask]
	if !tk.counted {
		tk.node.state.Add(1)
	}
	won := d.top.CompareAndSwap(t, t+1)
	d.stealMu.Unlock()
	if !won {
		if !tk.counted {
			return task{}, false, tk.node
		}
		return task{}, false, nil
	}
	return tk, true, nil
}

// hasPublished reports whether a thief scanning for work should bother
// locking this deque. Cheap screen: two atomic loads, no mutex.
func (d *taskDeque) hasPublished() bool {
	return d.top.Load() < d.bot.Load()
}

// reset readies the deque for a new region at a quiescent point (no
// concurrent owner or thieves). Rings that ballooned during a burst are
// released; retained rings are cleared so closures from the previous
// region do not outlive it via stale slots.
func (d *taskDeque) reset() {
	if r := d.buf.Load(); r != nil && d.botLocal > 0 {
		if len(r.slots) > dequeRetainSize {
			d.buf.Store(nil)
		} else {
			clear(r.slots)
		}
	}
	d.top.Store(0)
	d.bot.Store(0)
	d.botLocal = 0
	d.lastPub = 0
	d.topCache = 0
	d.draining = false
	if d.scratch != nil {
		clear(d.scratch)
	}
	d.pushed = 0
	d.ran = 0
	d.stole = 0
}
