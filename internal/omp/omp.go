// Package omp is an OpenMP-like shared-memory parallel runtime built on
// goroutines.
//
// The patternlets paper's 17 OpenMP programs are all built from a small set
// of constructs: parallel regions (#pragma omp parallel), thread identity
// (omp_get_thread_num / omp_get_num_threads), barriers, worksharing loops
// with schedules, reduction clauses, critical sections, atomic updates,
// single/master blocks, sections, locks, and omp_get_wtime. This package
// provides Go equivalents with the same fork/join semantics:
//
//	omp.Parallel(func(t *omp.Thread) {
//	    fmt.Printf("Hello from thread %d of %d\n", t.ThreadNum(), t.NumThreads())
//	}, omp.WithNumThreads(4))
//
// A Thread is only valid inside the region body it was passed to, exactly
// as omp_get_thread_num() is only meaningful inside a parallel region.
package omp

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// defaultThreads mirrors omp_set_num_threads / OMP_NUM_THREADS: the team
// size used when a region does not specify one. The paper's quad-core demo
// machine motivates the default of 4. It is an atomic so reading it on
// every region fork takes one load, not a lock round trip.
var defaultThreads atomic.Int64

func init() { defaultThreads.Store(4) }

// SetNumThreads sets the default team size for subsequent parallel regions
// (omp_set_num_threads). Values below 1 are clamped to 1.
func SetNumThreads(n int) {
	if n < 1 {
		n = 1
	}
	defaultThreads.Store(int64(n))
}

// MaxThreads returns the current default team size (omp_get_max_threads).
func MaxThreads() int {
	return int(defaultThreads.Load())
}

// GetWTime returns elapsed wall-clock seconds since an arbitrary fixed
// point in the past (omp_get_wtime).
func GetWTime() float64 {
	return time.Since(wtimeEpoch).Seconds()
}

var wtimeEpoch = time.Now()

// Option configures a parallel region.
type Option func(*config)

type config struct {
	numThreads int
	ctx        context.Context
}

// WithNumThreads sets the team size for one region, like the num_threads
// clause. Values below 1 are clamped to 1.
func WithNumThreads(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		c.numThreads = n
	}
}

// WithContext attaches a cancellation context to the region. When ctx
// fires, the region winds down at its next scheduling poll: worksharing
// schedules stop dispensing chunks, queued-but-unstarted tasks are
// dropped (their completion accounting still settles, so taskwaits and
// taskgroups unblock), and bodies can poll Thread.Cancelled. OpenMP has
// no such construct — it is the enabler for serving patternlet runs
// under per-request timeouts. A context that cannot fire (Background)
// costs nothing; an attached one costs a single predictable branch per
// task or chunk.
func WithContext(ctx context.Context) Option {
	return func(c *config) { c.ctx = ctx }
}

// team is the shared state of one parallel region. The maps (criticals,
// constructs) and the barrier's condition variable are created lazily, so
// a region that uses none of them pays for none of them — the fork/join
// fast path allocates only the team itself and its Thread slots, and even
// those are recycled between regions through teamPool.
type team struct {
	size    int
	barrier reusableBarrier

	critMu    sync.Mutex
	criticals map[string]*sync.Mutex // lazy

	constructMu sync.Mutex
	constructs  map[int]*constructEntry // lazy; construct index -> shared state (dynamic loops, single flags, reductions)
	sched       *taskScheduler          // work-stealing task runtime; created with the team, recycled with it

	threads []Thread // per-member views, one allocation for the whole team

	// Join bookkeeping: state's low bits count workers (non-master members)
	// still running; joinWaiterBit is set when the master has given up
	// spinning and parked on done. panicVal records the region's first
	// panic.
	state    atomic.Int32
	done     chan struct{}
	panicVal atomic.Pointer[panicValue]

	// Cancellation (WithContext). cancellable is set once at fork when the
	// region's context can actually fire, so the uncancellable fast path
	// checks one plain bool before ever touching the atomic; cancelled is
	// flipped by the watcher goroutine when the context fires. Cancellable
	// teams are not recycled through teamPool — the watcher may still be
	// unwinding when Parallel returns.
	cancellable bool
	cancelled   atomic.Bool

	// tele caches telemetry.Active() for the region, so the disabled
	// fast path is one nil field check per instrumented operation — no
	// atomic load in the hot loops. A collector enabled mid-region
	// attaches at the next region. Kept at the end of the struct so the
	// contended join fields above keep their cache placement.
	tele *telemetry.Collector
}

const (
	joinWaiterBit = 1 << 30
	joinCountMask = joinWaiterBit - 1
	joinSpins     = 64
)

// teamPool recycles team objects across regions: steady-state fork/join
// reuses both the parked worker goroutines (pool.go) and the team's
// allocations.
var teamPool sync.Pool

func newTeam(size int) *team {
	if v := teamPool.Get(); v != nil {
		tm := v.(*team)
		if cap(tm.threads) >= size {
			tm.reset(size)
			tm.tele = telemetry.Active()
			return tm
		}
		// Too small for this region; let the GC have it.
	}
	c := size
	if c < 8 {
		c = 8 // typical teaching sweeps fork teams of 1..8; share one backing array
	}
	tm := &team{size: size, threads: make([]Thread, size, c), done: make(chan struct{}, 1)}
	tm.barrier.parties = size
	tm.sched = newTaskScheduler(size)
	tm.tele = telemetry.Active()
	for id := range tm.threads {
		tm.threads[id] = Thread{id: id, team: tm, sched: tm.sched, stealSeed: uint64(id)*0x9E3779B97F4A7C15 + 1}
	}
	return tm
}

// reset readies a recycled team for a new region of the given size. The
// criticals map, task scheduler and done channel carry over (all are
// quiescent after a clean join); construct state is cleared defensively.
func (tm *team) reset(size int) {
	tm.size = size
	tm.threads = tm.threads[:size]
	tm.sched.reset(size)
	for id := range tm.threads {
		tm.threads[id] = Thread{id: id, team: tm, sched: tm.sched, stealSeed: uint64(id)*0x9E3779B97F4A7C15 + 1}
	}
	tm.barrier.parties = size
	tm.barrier.waiting = 0
	tm.barrier.poisoned = false
	if len(tm.constructs) != 0 {
		clear(tm.constructs)
	}
	tm.state.Store(0)
	tm.panicVal.Store(nil)
	tm.cancellable = false
	tm.cancelled.Store(false)
}

// canceled reports whether the region's context has fired. The plain
// bool short-circuit keeps uncancellable regions — every region not
// forked with WithContext — at zero atomic cost per poll.
func (tm *team) canceled() bool {
	return tm.cancellable && tm.cancelled.Load()
}

// recoverMember records a team member's panic and poisons the barrier so
// teammates parked there unwind instead of deadlocking. It must be
// deferred directly.
func (tm *team) recoverMember() {
	if r := recover(); r != nil {
		tm.panicVal.CompareAndSwap(nil, &panicValue{r})
		tm.barrier.poison()
	}
}

// constructEntry tracks one worksharing construct's shared state and how
// many team members have picked it up.
type constructEntry struct {
	state    any
	arrivals int
}

// construct returns the shared state for the idx-th worksharing construct
// encountered in the region, creating it with mk on first arrival. All
// threads must encounter worksharing constructs in the same order, as in
// OpenMP. Each thread calls construct exactly once per index, so once the
// whole team has arrived the map entry is dropped — regions that loop over
// worksharing constructs (e.g. a stencil's timestep loop) stay O(1) in
// memory.
func (tm *team) construct(idx int, mk func() any) any {
	tm.constructMu.Lock()
	defer tm.constructMu.Unlock()
	if tm.constructs == nil {
		tm.constructs = map[int]*constructEntry{}
	}
	e, ok := tm.constructs[idx]
	if !ok {
		e = &constructEntry{state: mk()}
		tm.constructs[idx] = e
	}
	e.arrivals++
	if e.arrivals == tm.size {
		delete(tm.constructs, idx)
	}
	return e.state
}

func (tm *team) critical(name string) *sync.Mutex {
	tm.critMu.Lock()
	defer tm.critMu.Unlock()
	if tm.criticals == nil {
		tm.criticals = map[string]*sync.Mutex{}
	}
	m, ok := tm.criticals[name]
	if !ok {
		m = &sync.Mutex{}
		tm.criticals[name] = m
	}
	return m
}

// Thread is the per-member view of a parallel region. It is passed to the
// region body (and to task bodies that take a *Thread) and must not be
// retained or used after the region ends. A Thread is bound to the
// goroutine running it: task-runtime calls (Task, TaskWait, taskgroups)
// must go through the calling goroutine's own handle — see task.go.
type Thread struct {
	id        int
	team      *team
	sched     *taskScheduler // cached at team construction; no lock on the submit path
	construct int            // per-thread count of worksharing constructs encountered
	node      waitNode       // implicit taskwait scope for Task/TaskWait
	stealSeed uint64         // per-thread xorshift state for victim selection
}

// ThreadNum returns this thread's id within the team, 0..NumThreads()-1
// (omp_get_thread_num).
func (t *Thread) ThreadNum() int { return t.id }

// NumThreads returns the team size (omp_get_num_threads).
func (t *Thread) NumThreads() int { return t.team.size }

// Cancelled reports whether the region's context (WithContext) has
// fired. Long-running bodies poll it at natural checkpoints the way a C
// OpenMP program would poll a shared cancellation flag; the worksharing
// schedules and the task runtime poll it on the caller's behalf at every
// chunk and task boundary. Always false for regions without a context.
func (t *Thread) Cancelled() bool { return t.team.canceled() }

// Barrier blocks until all threads in the team have reached it
// (#pragma omp barrier). With telemetry enabled, each member's wait is
// recorded as a "barrier-wait" span — the per-thread imbalance the span
// durations expose is exactly what the barrier patternlets teach.
// The traced path lives in its own method so Barrier itself stays under
// the inlining budget — uninstrumented barriers are a hot synchronization
// primitive and must stay an inlined nil-check + await call.
func (t *Thread) Barrier() {
	if col := t.team.tele; col != nil {
		t.barrierTraced(col)
		return
	}
	t.team.barrier.await()
}

func (t *Thread) barrierTraced(col *telemetry.Collector) {
	sp := col.Begin("omp", "barrier-wait", t.id)
	t.team.barrier.await()
	sp.End()
}

// Critical executes fn while holding the named critical section's lock
// (#pragma omp critical(name)). As in OpenMP, distinct names are distinct
// locks and the empty name is the single anonymous critical section.
func (t *Thread) Critical(name string, fn func()) {
	m := t.team.critical(name)
	m.Lock()
	defer m.Unlock()
	fn()
}

// Master executes fn on thread 0 only, with no implied barrier
// (#pragma omp master).
func (t *Thread) Master(fn func()) {
	if t.id == 0 {
		fn()
	}
}

// Single executes fn on exactly one thread — whichever arrives first — and
// then synchronizes the whole team, matching #pragma omp single with its
// implicit barrier.
func (t *Thread) Single(fn func()) {
	t.SingleNoWait(fn)
	t.Barrier()
}

// SingleNoWait is Single with the nowait clause: one thread runs fn, the
// others continue immediately.
func (t *Thread) SingleNoWait(fn func()) {
	idx := t.nextConstruct()
	st := t.team.construct(idx, func() any { return &singleState{} }).(*singleState)
	if st.claim() {
		fn()
	}
}

type singleState struct {
	claimed atomic.Bool
}

func (s *singleState) claim() bool {
	return s.claimed.CompareAndSwap(false, true)
}

// Sections distributes the given section bodies among the team's threads
// (#pragma omp sections): each section runs exactly once, on some thread,
// and an implicit barrier follows.
func (t *Thread) Sections(sections ...func()) {
	idx := t.nextConstruct()
	st := t.team.construct(idx, func() any { return &dynCounter{} }).(*dynCounter)
	for {
		i := st.next(1, len(sections))
		if i >= len(sections) {
			break
		}
		sections[i]()
	}
	t.Barrier()
}

func (t *Thread) nextConstruct() int {
	idx := t.construct
	t.construct++
	return idx
}

// panicValue boxes the first panic raised inside a region.
type panicValue struct{ r any }

// Parallel runs body on a team of threads and blocks until all of them
// finish — the fork/join of #pragma omp parallel. The calling goroutine
// becomes team member 0 (the master thread), as in OpenMP; the remaining
// members run on the persistent worker pool (see pool.go), so steady-state
// regions wake parked goroutines instead of spawning new ones. The join is
// adaptive: the master yields the processor a few times looking for the
// workers to finish (the common case for short regions) before parking on
// a channel. If any team member panics, Parallel waits for the rest of the
// team and then re-panics with the first panic value.
func Parallel(body func(t *Thread), opts ...Option) {
	cfg := config{numThreads: MaxThreads()}
	for _, o := range opts {
		o(&cfg)
	}
	n := cfg.numThreads
	tm := newTeam(n)

	// Cancellation wiring: only a context that can actually fire gets a
	// watcher; Background/TODO (Done() == nil) keeps the region on the
	// uncancellable fast path.
	var stopWatch chan struct{}
	if cfg.ctx != nil {
		if done := cfg.ctx.Done(); done != nil {
			tm.cancellable = true
			if cfg.ctx.Err() != nil {
				tm.cancelled.Store(true) // already expired; run the region as pre-cancelled
			} else {
				stopWatch = make(chan struct{})
				go func() {
					select {
					case <-done:
						tm.cancelled.Store(true)
						// Idlers parked in the task runtime re-check the
						// cancel flag on wakeup; give each a token.
						tm.sched.wakeIdle()
					case <-stopWatch:
					}
				}()
			}
		}
	}

	// Team lifecycle telemetry: one "region" span on the master covering
	// fork through the implicit taskwait, one "member" span per worker.
	var regionSpan telemetry.Span
	if tm.tele != nil {
		regionSpan = tm.tele.Begin("omp", "region", 0)
		regionSpan.SetArg("threads", strconv.Itoa(n))
		tm.tele.Counter("omp.regions").Inc()
	}

	if n > 1 {
		tm.state.Store(int32(n - 1))
		run := func(id int) {
			defer func() {
				// The member that brings the worker count to zero wakes the
				// master iff it has parked; otherwise the master's spin loop
				// observes zero and no signal is ever sent, keeping the done
				// channel clean for team reuse.
				if s := tm.state.Add(-1); s&joinCountMask == 0 && s&joinWaiterBit != 0 {
					tm.done <- struct{}{}
				}
			}()
			// Runs even if the body panics: teammates may be parked waiting
			// on tasks this thread queued but never published.
			defer tm.sched.flush(id)
			defer tm.recoverMember()
			if tm.tele != nil {
				sp := tm.tele.Begin("omp", "member", id)
				defer sp.End()
			}
			body(&tm.threads[id])
		}
		for id := 1; id < n; id++ {
			submitRun(run, id)
		}
	}

	func() { // master thread participates directly
		defer tm.sched.flush(0)
		defer tm.recoverMember()
		body(&tm.threads[0])
	}()

	if n > 1 {
		joined := false
		for i := 0; i < joinSpins; i++ {
			if tm.state.Load()&joinCountMask == 0 {
				joined = true
				break
			}
			runtime.Gosched()
		}
		if !joined {
			// Publish the waiter bit with a CAS loop (atomic.Int32.Or needs
			// go1.23; the module supports 1.22). If workers were still
			// running when the bit landed, the last one signals done; if the
			// count hit zero first, no signal is coming — clear the bit so
			// the recycled team starts clean.
			for {
				old := tm.state.Load()
				if old&joinCountMask == 0 {
					break
				}
				if tm.state.CompareAndSwap(old, old|joinWaiterBit) {
					<-tm.done
					tm.state.Store(0)
					break
				}
			}
		}
	}
	tm.drainTasks() // implicit taskwait at the end of the region

	if stopWatch != nil {
		close(stopWatch)
	}

	if tm.tele != nil {
		// Fold the region's task counters into the process-wide collector
		// and close the lifecycle span (after the implicit taskwait, so
		// the span covers everything the region ran).
		tm.sched.foldInto(tm.tele)
		regionSpan.End()
	}

	if pv := tm.panicVal.Load(); pv != nil {
		panic(fmt.Sprintf("omp: parallel region panicked: %v", pv.r))
	}
	if tm.cancellable {
		// The watcher goroutine may still be between its channel receive
		// and its last store; recycling the team would let that store land
		// on the next region. Leave cancellable teams to the GC — they are
		// the rare, already-slow path.
		return
	}
	// Clean exit: recycle the team's allocations for the next region. A
	// panicked team is left for the GC — its barrier is poisoned and its
	// construct state may be mid-flight.
	teamPool.Put(tm)
}

// reusableBarrier is a cyclic barrier with poison support so a panicking
// team member does not strand its teammates. It is embedded by value in
// the team and its condition variable is created on first wait, so regions
// that never synchronize never allocate for it.
type reusableBarrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	parties  int
	waiting  int
	phase    uint64
	poisoned bool
}

func (b *reusableBarrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned {
		panic("omp: barrier poisoned by panicking teammate")
	}
	if b.parties == 1 {
		b.phase++
		return
	}
	if b.cond == nil {
		b.cond = sync.NewCond(&b.mu)
	}
	phase := b.phase
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.phase++
		b.cond.Broadcast()
		return
	}
	for phase == b.phase && !b.poisoned {
		b.cond.Wait()
	}
	if b.poisoned && phase == b.phase {
		panic("omp: barrier poisoned by panicking teammate")
	}
}

func (b *reusableBarrier) poison() {
	b.mu.Lock()
	b.poisoned = true
	if b.cond != nil {
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}
