// Package omp is an OpenMP-like shared-memory parallel runtime built on
// goroutines.
//
// The patternlets paper's 17 OpenMP programs are all built from a small set
// of constructs: parallel regions (#pragma omp parallel), thread identity
// (omp_get_thread_num / omp_get_num_threads), barriers, worksharing loops
// with schedules, reduction clauses, critical sections, atomic updates,
// single/master blocks, sections, locks, and omp_get_wtime. This package
// provides Go equivalents with the same fork/join semantics:
//
//	omp.Parallel(func(t *omp.Thread) {
//	    fmt.Printf("Hello from thread %d of %d\n", t.ThreadNum(), t.NumThreads())
//	}, omp.WithNumThreads(4))
//
// A Thread is only valid inside the region body it was passed to, exactly
// as omp_get_thread_num() is only meaningful inside a parallel region.
package omp

import (
	"fmt"
	"sync"
	"time"
)

// defaultThreads mirrors omp_set_num_threads / OMP_NUM_THREADS: the team
// size used when a region does not specify one. The paper's quad-core demo
// machine motivates the default of 4.
var defaultThreads = struct {
	mu sync.Mutex
	n  int
}{n: 4}

// SetNumThreads sets the default team size for subsequent parallel regions
// (omp_set_num_threads). Values below 1 are clamped to 1.
func SetNumThreads(n int) {
	if n < 1 {
		n = 1
	}
	defaultThreads.mu.Lock()
	defaultThreads.n = n
	defaultThreads.mu.Unlock()
}

// MaxThreads returns the current default team size (omp_get_max_threads).
func MaxThreads() int {
	defaultThreads.mu.Lock()
	defer defaultThreads.mu.Unlock()
	return defaultThreads.n
}

// GetWTime returns elapsed wall-clock seconds since an arbitrary fixed
// point in the past (omp_get_wtime).
func GetWTime() float64 {
	return time.Since(wtimeEpoch).Seconds()
}

var wtimeEpoch = time.Now()

// Option configures a parallel region.
type Option func(*config)

type config struct {
	numThreads int
}

// WithNumThreads sets the team size for one region, like the num_threads
// clause. Values below 1 are clamped to 1.
func WithNumThreads(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		c.numThreads = n
	}
}

// team is the shared state of one parallel region.
type team struct {
	size    int
	barrier *reusableBarrier

	critMu    sync.Mutex
	criticals map[string]*sync.Mutex

	constructMu sync.Mutex
	constructs  map[int]*constructEntry // construct index -> shared state (dynamic loops, single flags, reductions)
	tasks       *taskPool               // lazily created by the first Task()
}

func newTeam(size int) *team {
	return &team{
		size:       size,
		barrier:    newReusableBarrier(size),
		criticals:  map[string]*sync.Mutex{},
		constructs: map[int]*constructEntry{},
	}
}

// constructEntry tracks one worksharing construct's shared state and how
// many team members have picked it up.
type constructEntry struct {
	state    any
	arrivals int
}

// construct returns the shared state for the idx-th worksharing construct
// encountered in the region, creating it with mk on first arrival. All
// threads must encounter worksharing constructs in the same order, as in
// OpenMP. Each thread calls construct exactly once per index, so once the
// whole team has arrived the map entry is dropped — regions that loop over
// worksharing constructs (e.g. a stencil's timestep loop) stay O(1) in
// memory.
func (tm *team) construct(idx int, mk func() any) any {
	tm.constructMu.Lock()
	defer tm.constructMu.Unlock()
	e, ok := tm.constructs[idx]
	if !ok {
		e = &constructEntry{state: mk()}
		tm.constructs[idx] = e
	}
	e.arrivals++
	if e.arrivals == tm.size {
		delete(tm.constructs, idx)
	}
	return e.state
}

func (tm *team) critical(name string) *sync.Mutex {
	tm.critMu.Lock()
	defer tm.critMu.Unlock()
	m, ok := tm.criticals[name]
	if !ok {
		m = &sync.Mutex{}
		tm.criticals[name] = m
	}
	return m
}

// Thread is the per-member view of a parallel region. It is passed to the
// region body and must not be retained or used after the body returns.
type Thread struct {
	id        int
	team      *team
	construct int // per-thread count of worksharing constructs encountered
}

// ThreadNum returns this thread's id within the team, 0..NumThreads()-1
// (omp_get_thread_num).
func (t *Thread) ThreadNum() int { return t.id }

// NumThreads returns the team size (omp_get_num_threads).
func (t *Thread) NumThreads() int { return t.team.size }

// Barrier blocks until all threads in the team have reached it
// (#pragma omp barrier).
func (t *Thread) Barrier() { t.team.barrier.await() }

// Critical executes fn while holding the named critical section's lock
// (#pragma omp critical(name)). As in OpenMP, distinct names are distinct
// locks and the empty name is the single anonymous critical section.
func (t *Thread) Critical(name string, fn func()) {
	m := t.team.critical(name)
	m.Lock()
	defer m.Unlock()
	fn()
}

// Master executes fn on thread 0 only, with no implied barrier
// (#pragma omp master).
func (t *Thread) Master(fn func()) {
	if t.id == 0 {
		fn()
	}
}

// Single executes fn on exactly one thread — whichever arrives first — and
// then synchronizes the whole team, matching #pragma omp single with its
// implicit barrier.
func (t *Thread) Single(fn func()) {
	t.SingleNoWait(fn)
	t.Barrier()
}

// SingleNoWait is Single with the nowait clause: one thread runs fn, the
// others continue immediately.
func (t *Thread) SingleNoWait(fn func()) {
	idx := t.nextConstruct()
	st := t.team.construct(idx, func() any { return &singleState{} }).(*singleState)
	if st.claim() {
		fn()
	}
}

type singleState struct {
	mu      sync.Mutex
	claimed bool
}

func (s *singleState) claim() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.claimed {
		return false
	}
	s.claimed = true
	return true
}

// Sections distributes the given section bodies among the team's threads
// (#pragma omp sections): each section runs exactly once, on some thread,
// and an implicit barrier follows.
func (t *Thread) Sections(sections ...func()) {
	idx := t.nextConstruct()
	st := t.team.construct(idx, func() any { return &dynCounter{} }).(*dynCounter)
	for {
		i := st.next(1, len(sections))
		if i >= len(sections) {
			break
		}
		sections[i]()
	}
	t.Barrier()
}

func (t *Thread) nextConstruct() int {
	idx := t.construct
	t.construct++
	return idx
}

// Parallel runs body on a team of threads and blocks until all of them
// finish — the fork/join of #pragma omp parallel. The calling goroutine
// becomes team member 0 (the master thread), as in OpenMP. If any team
// member panics, Parallel waits for the rest of the team and then
// re-panics with the first panic value.
func Parallel(body func(t *Thread), opts ...Option) {
	cfg := config{numThreads: MaxThreads()}
	for _, o := range opts {
		o(&cfg)
	}
	n := cfg.numThreads
	tm := newTeam(n)

	var wg sync.WaitGroup
	panics := make(chan any, n)
	run := func(id int) {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				panics <- r
				// A panicking member would deadlock teammates waiting at a
				// barrier; poison the barrier so they unwind too.
				tm.barrier.poison()
			}
		}()
		body(&Thread{id: id, team: tm})
	}

	wg.Add(n)
	for id := 1; id < n; id++ {
		go run(id)
	}
	run(0) // master thread participates directly
	wg.Wait()
	tm.drainTasks() // implicit taskwait at the end of the region

	select {
	case r := <-panics:
		panic(fmt.Sprintf("omp: parallel region panicked: %v", r))
	default:
	}
}

// reusableBarrier is a cyclic barrier with poison support so a panicking
// team member does not strand its teammates.
type reusableBarrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	parties  int
	waiting  int
	phase    uint64
	poisoned bool
}

func newReusableBarrier(parties int) *reusableBarrier {
	b := &reusableBarrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *reusableBarrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned {
		panic("omp: barrier poisoned by panicking teammate")
	}
	phase := b.phase
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.phase++
		b.cond.Broadcast()
		return
	}
	for phase == b.phase && !b.poisoned {
		b.cond.Wait()
	}
	if b.poisoned && phase == b.phase {
		panic("omp: barrier poisoned by panicking teammate")
	}
}

func (b *reusableBarrier) poison() {
	b.mu.Lock()
	b.poisoned = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
