package omp

import (
	"cmp"
	"sync"
)

// Number is the constraint for arithmetic reduction operators.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr |
		~float32 | ~float64
}

// Integer is the constraint for bitwise reduction operators.
type Integer interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr
}

// The reduction operators OpenMP permits in a reduction clause, per §III.D
// of the paper: +, *, -, &, |, ^, && and || (and max/min, which MPI also
// provides). OpenMP defines reduction(-) to combine by addition, and so
// do we.

// Sum returns the + reduction operator.
func Sum[T Number]() func(T, T) T { return func(a, b T) T { return a + b } }

// Prod returns the * reduction operator.
func Prod[T Number]() func(T, T) T { return func(a, b T) T { return a * b } }

// Max returns the max reduction operator.
func Max[T cmp.Ordered]() func(T, T) T {
	return func(a, b T) T {
		if a > b {
			return a
		}
		return b
	}
}

// Min returns the min reduction operator.
func Min[T cmp.Ordered]() func(T, T) T {
	return func(a, b T) T {
		if a < b {
			return a
		}
		return b
	}
}

// BitAnd returns the & reduction operator.
func BitAnd[T Integer]() func(T, T) T { return func(a, b T) T { return a & b } }

// BitOr returns the | reduction operator.
func BitOr[T Integer]() func(T, T) T { return func(a, b T) T { return a | b } }

// BitXor returns the ^ reduction operator.
func BitXor[T Integer]() func(T, T) T { return func(a, b T) T { return a ^ b } }

// LogAnd returns the && reduction operator.
func LogAnd() func(bool, bool) bool { return func(a, b bool) bool { return a && b } }

// LogOr returns the || reduction operator.
func LogOr() func(bool, bool) bool { return func(a, b bool) bool { return a || b } }

// paddedSlot spaces per-thread partials at least a cache line apart, so
// the threads writing their local values before the tree combine do not
// false-share: without the padding, eight int64 partials fit in one 64-byte
// line and every write invalidates every other thread's copy.
type paddedSlot[T any] struct {
	v T
	_ [64]byte
}

// reduceState holds one reduction construct's contributions. vals is sized
// to the team, one padded slot per thread; the tree combine mutates it in
// place across lg(p) barrier-separated rounds.
type reduceState[T any] struct {
	once sync.Once
	vals []paddedSlot[T]
}

// Reduce combines each team member's local value with op and returns the
// combined value to every thread — the semantics of OpenMP's
// reduction(op:var) clause at the end of a region. Every thread in the
// team must call Reduce, passing the same op.
//
// The combine runs as a binary tree over thread ids (Figure 19 of the
// paper): values at distance `stride` fold pairwise, stride doubling each
// round, so p local values combine in ceil(lg p) rounds rather than p-1
// sequential steps. For an associative op the result equals the
// sequential left-to-right fold over thread ids, so results are
// deterministic.
func Reduce[T any](t *Thread, op func(T, T) T, local T) T {
	idx := t.nextConstruct()
	st := t.team.construct(idx, func() any { return &reduceState[T]{} }).(*reduceState[T])
	st.once.Do(func() { st.vals = make([]paddedSlot[T], t.team.size) })
	st.vals[t.id].v = local
	t.Barrier()
	p := t.team.size
	for stride := 1; stride < p; stride *= 2 {
		if t.id%(2*stride) == 0 && t.id+stride < p {
			st.vals[t.id].v = op(st.vals[t.id].v, st.vals[t.id+stride].v)
		}
		t.Barrier()
	}
	result := st.vals[0].v
	t.Barrier() // everyone reads vals[0] before any later construct reuses state
	return result
}

// reduceTreeState holds one ReduceTree construct's contributions and the
// shared taskgroup the combine tree runs in.
type reduceTreeState[T any] struct {
	once sync.Once
	vals []paddedSlot[T]
	root TaskGroup
	seed singleState
}

// ReduceTree combines each team member's local value with op and returns
// the combined value to every thread — the same contract as Reduce, but
// the O(lg t) combine runs as a recursive fork-join *task tree* instead
// of barrier-separated rounds: one thread seeds the root combine task
// into a shared taskgroup, every thread's Wait on the group helps
// execute it, and each tree node forks its left half while folding the
// right. This is Figure 19's reduction tree expressed in the runtime's
// own task vocabulary (vtime.ReductionTree models the identical DAG in
// virtual time), and the natural follow-on demo once students have seen
// the task patternlet.
//
// For an associative op the result equals the sequential left-to-right
// fold over thread ids, exactly as Reduce — the tree only rebalances the
// parenthesization.
func ReduceTree[T any](t *Thread, op func(T, T) T, local T) T {
	idx := t.nextConstruct()
	st := t.team.construct(idx, func() any { return &reduceTreeState[T]{} }).(*reduceTreeState[T])
	st.once.Do(func() { st.vals = make([]paddedSlot[T], t.team.size) })
	st.vals[t.id].v = local
	t.Barrier() // all contributions deposited
	if st.seed.claim() {
		vals := st.vals
		st.root.Task(t, func(c *Thread) { treeCombine(c, vals, op, 0, t.team.size) })
	}
	t.Barrier() // root task published before anyone decides to wait
	st.root.Wait(t)
	result := st.vals[0].v
	t.Barrier() // everyone reads vals[0] before any later construct reuses state
	return result
}

// treeCombine folds vals[lo:hi] into vals[lo].v: pairs fold directly,
// larger ranges fork the left half as a task into a per-node taskgroup
// while the current thread descends into the right, join, then combine
// the two halves' results.
func treeCombine[T any](t *Thread, vals []paddedSlot[T], op func(T, T) T, lo, hi int) {
	if hi-lo <= 2 {
		if hi-lo == 2 {
			vals[lo].v = op(vals[lo].v, vals[lo+1].v)
		}
		return
	}
	mid := lo + (hi-lo)/2
	t.TaskGroup(func(tg *TaskGroup) {
		tg.Task(t, func(c *Thread) { treeCombine(c, vals, op, lo, mid) })
		treeCombine(t, vals, op, mid, hi)
	})
	vals[lo].v = op(vals[lo].v, vals[mid].v)
}

// ParallelForReduce forks a team, workshares the loop over [0, n), reduces
// each thread's fold of its iterations with op, and returns the combined
// value — the fused #pragma omp parallel for reduction(op:acc).
//
// identity must be op's identity element (0 for +, 1 for *, etc.); each
// thread starts its private accumulator there, exactly as OpenMP
// initializes the private copy of a reduction variable.
func ParallelForReduce[T any](n int, sched Schedule, op func(T, T) T, identity T, body func(i int) T, opts ...Option) T {
	var result T
	Parallel(func(t *Thread) {
		local := identity
		t.ForNoWait(0, n, sched, func(i int) {
			local = op(local, body(i))
		})
		combined := Reduce(t, op, local)
		t.Master(func() { result = combined })
	}, opts...)
	return result
}
