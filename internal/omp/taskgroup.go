package omp

import "sync/atomic"

// Task groups: scoped completion tracking for the task runtime,
// OpenMP 4.0's #pragma omp taskgroup. A TaskGroup waits for exactly the
// tasks submitted to it — the scope recursive fork-join code needs,
// where "wait for my children" must not mean "wait for every task the
// team ever submitted". Nesting gives the transitive guarantee: a child
// that opens its own group for its children does not return until they
// finish, so a parent group's Wait covers the whole subtree.
//
// (OpenMP's taskgroup implicitly covers descendant tasks too; here
// descendants are covered exactly when the recursion nests groups, which
// is how every fork-join decomposition in this repo is written. The
// trade keeps the hot path free of parent-chain bookkeeping.)

// waitNode is a completion counter one waiter scope (a TaskGroup, or a
// Thread's implicit taskwait scope) blocks on. state counts outstanding
// tasks; waiting threads help execute work and park in the scheduler's
// idle protocol until it reaches zero, so the node itself needs no
// channel or condition variable.
type waitNode struct {
	state atomic.Int64
}

// TaskGroup tracks a set of tasks so they can be waited on as a unit.
// The zero value is ready to use. A group may be shared across the team
// (see Thread.SharedTaskGroup); submissions must happen-before the Wait
// that is meant to cover them — in a shared group, separate the
// submitting phase from Wait with a Barrier.
type TaskGroup struct {
	node waitNode
}

// Task submits fn to the group. t must be the calling goroutine's own
// thread handle (the region-body parameter, or the *Thread a task body
// received); fn receives the thread that ends up executing it, which is
// the handle it must use to spawn or wait in turn.
func (tg *TaskGroup) Task(t *Thread, fn func(*Thread)) {
	tg.node.state.Add(1)
	t.sched.submit(t.id, task{exec: fn, node: &tg.node, counted: true})
}

// Wait blocks until every task submitted to the group has finished,
// executing the caller's own queued tasks and stealing from teammates
// while it waits.
func (tg *TaskGroup) Wait(t *Thread) {
	if tg.node.state.Load() == 0 {
		return
	}
	t.sched.waitNodeZero(t, &tg.node)
}

// TaskGroup runs body with a fresh group and waits for the group's tasks
// before returning — the block form of #pragma omp taskgroup:
//
//	t.TaskGroup(func(tg *omp.TaskGroup) {
//		tg.Task(t, func(c *omp.Thread) { left(c) })
//		right(t) // current thread takes the other half
//	}) // joined: both halves done
func (t *Thread) TaskGroup(body func(tg *TaskGroup)) {
	var tg TaskGroup
	body(&tg)
	tg.Wait(t)
}

// SharedTaskGroup returns one group shared by the whole team — a
// worksharing construct, so every thread must call it in the same
// construct order. The usual shape is: one thread seeds the group with
// the root task, a Barrier publishes the submission, then every thread
// calls Wait and the whole team helps execute the decomposition.
func (t *Thread) SharedTaskGroup() *TaskGroup {
	idx := t.nextConstruct()
	return t.team.construct(idx, func() any { return &TaskGroup{} }).(*TaskGroup)
}

// SerialCutoff reports whether a recursive decomposition should stop
// spawning and handle a subproblem of size n inline: true once n is at
// most grain, or when the team has nobody to share work with. Using it
// as the base-case test keeps the task count proportional to the useful
// parallelism instead of the input size.
func (t *Thread) SerialCutoff(n, grain int) bool {
	return n <= grain || t.team.size == 1
}

// Taskloop runs body(i) for every i in [lo, hi) as chunked tasks and
// waits for all of them — #pragma omp taskloop. Unlike For, the chunks
// load-balance through the work-stealing scheduler rather than a
// worksharing schedule, and only the calling thread need encounter the
// construct. grain is the chunk size; grain <= 0 picks one that yields a
// few chunks per team member. The final chunk runs inline on the caller.
func (t *Thread) Taskloop(lo, hi, grain int, body func(i int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = n / (4 * t.team.size)
		if grain < 1 {
			grain = 1
		}
	}
	var tg TaskGroup
	first := lo // first chunk is kept for the caller
	for start := lo + grain; start < hi; start += grain {
		if t.team.canceled() {
			break // stop spawning; tasks already queued are dropped by the scheduler
		}
		end := start + grain
		if end > hi {
			end = hi
		}
		s, e := start, end
		tg.Task(t, func(et *Thread) {
			for i := s; i < e; i++ {
				if et.team.canceled() {
					return
				}
				body(i)
			}
		})
	}
	inlineEnd := first + grain
	if inlineEnd > hi {
		inlineEnd = hi
	}
	for i := first; i < inlineEnd; i++ {
		if t.team.canceled() {
			break
		}
		body(i)
	}
	tg.Wait(t)
}
