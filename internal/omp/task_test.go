package omp

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTaskAllExecuteExactlyOnce(t *testing.T) {
	const ntasks = 50
	var runs [ntasks]atomic.Int32
	Parallel(func(th *Thread) {
		th.Master(func() {
			for i := 0; i < ntasks; i++ {
				th.Task(func() { runs[i].Add(1) })
			}
		})
		th.Barrier()
		th.TaskWait()
	}, WithNumThreads(4))
	for i := range runs {
		if runs[i].Load() != 1 {
			t.Fatalf("task %d ran %d times", i, runs[i].Load())
		}
	}
}

func TestTaskWaitBlocksUntilDone(t *testing.T) {
	var done atomic.Int32
	Parallel(func(th *Thread) {
		if th.ThreadNum() == 0 {
			for i := 0; i < 20; i++ {
				th.Task(func() { done.Add(1) })
			}
			th.TaskWait()
			if done.Load() != 20 {
				t.Errorf("TaskWait returned with %d of 20 tasks done", done.Load())
			}
		}
	}, WithNumThreads(4))
}

func TestRegionEndIsImplicitTaskwait(t *testing.T) {
	var done atomic.Int32
	Parallel(func(th *Thread) {
		th.Task(func() { done.Add(1) })
		// No explicit TaskWait: the region end must still run it.
	}, WithNumThreads(4))
	if done.Load() != 4 {
		t.Fatalf("%d of 4 tasks ran by region end", done.Load())
	}
}

func TestNestedTaskSubmission(t *testing.T) {
	// Tasks submitting tasks: recursive Fork-Join, the merge-sort shape.
	// Each level opens a taskgroup, forks one child as a task, recurses
	// into the other inline, and joins — spawns always go through the
	// thread actually executing the node.
	var leaves atomic.Int32
	Parallel(func(th *Thread) {
		th.Master(func() {
			var spawn func(c *Thread, depth int)
			spawn = func(c *Thread, depth int) {
				if depth == 0 {
					leaves.Add(1)
					return
				}
				c.TaskGroup(func(tg *TaskGroup) {
					tg.Task(c, func(e *Thread) { spawn(e, depth-1) })
					spawn(c, depth-1)
				})
			}
			spawn(th, 5)
		})
	}, WithNumThreads(4))
	if leaves.Load() != 32 {
		t.Fatalf("%d leaves, want 32", leaves.Load())
	}
}

func TestTasksRunOnMultipleThreads(t *testing.T) {
	// A shared taskgroup seeded by the master: every thread's Wait helps
	// execute it, so with enough slow tasks the steal path must spread
	// work beyond thread 0.
	var mu sync.Mutex
	executors := map[int]bool{}
	var ran atomic.Int32
	Parallel(func(th *Thread) {
		root := th.SharedTaskGroup()
		th.Master(func() {
			for i := 0; i < 200; i++ {
				root.Task(th, func(e *Thread) {
					time.Sleep(50 * time.Microsecond)
					mu.Lock()
					executors[e.ThreadNum()] = true
					mu.Unlock()
					ran.Add(1)
				})
			}
		})
		th.Barrier()
		root.Wait(th)
	}, WithNumThreads(4))
	if ran.Load() != 200 {
		t.Fatalf("%d of 200 tasks ran", ran.Load())
	}
	// Exact spread is schedule-dependent, but someone must have run them.
	if len(executors) == 0 {
		t.Fatal("no task executed")
	}
}

func TestTaskWaitScopedToSubmitter(t *testing.T) {
	// Regression for the old team-wide TaskWait: thread 0's TaskWait must
	// cover its own children only. Thread 1 queues a task gated on a
	// channel that is only closed *after* thread 0's TaskWait returns —
	// under drain-the-whole-team semantics this deadlocks.
	gate := make(chan struct{})
	waited := make(chan struct{})
	var own atomic.Int32
	Parallel(func(th *Thread) {
		switch th.ThreadNum() {
		case 1:
			th.Task(func() { <-gate })
			close(waited) // hand off to thread 0 only after the gated task is queued
			th.TaskWait()
		case 0:
			<-waited
			for i := 0; i < 10; i++ {
				th.Task(func() { own.Add(1) })
			}
			th.TaskWait()
			if own.Load() != 10 {
				t.Errorf("TaskWait returned with %d of 10 own tasks done", own.Load())
			}
			close(gate) // release thread 1's child; region end drains it
		}
	}, WithNumThreads(4))
}

func TestTaskGroupWaitsExactlyItsTasks(t *testing.T) {
	var inGroup, outside atomic.Int32
	Parallel(func(th *Thread) {
		th.Master(func() {
			th.Task(func() { outside.Add(1) }) // implicit scope, not the group's
			th.TaskGroup(func(tg *TaskGroup) {
				for i := 0; i < 25; i++ {
					tg.Task(th, func(*Thread) { inGroup.Add(1) })
				}
				if n := inGroup.Load(); n == 25 {
					// Fine — tasks may run eagerly during submission via
					// steals, but the group must not be "done" before all
					// submissions.
					_ = n
				}
			})
			if inGroup.Load() != 25 {
				t.Errorf("taskgroup joined with %d of 25 tasks done", inGroup.Load())
			}
		})
	}, WithNumThreads(4))
	if outside.Load() != 1 {
		t.Fatalf("ungrouped task ran %d times", outside.Load())
	}
}

func TestTaskloopCoversRange(t *testing.T) {
	for _, threads := range []int{1, 3, 4} {
		const n = 1000
		hits := make([]atomic.Int32, n)
		Parallel(func(th *Thread) {
			th.Master(func() {
				th.Taskloop(0, n, 7, func(i int) { hits[i].Add(1) })
			})
		}, WithNumThreads(threads))
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("threads=%d: iteration %d ran %d times", threads, i, hits[i].Load())
			}
		}
	}
}

func TestTaskStatsCountsStealsAndSpawns(t *testing.T) {
	// One producer, three consumers parked on a shared group: the
	// consumers can only get work through the steal path.
	const ntasks = 100
	var stats TaskStats
	Parallel(func(th *Thread) {
		root := th.SharedTaskGroup()
		th.Master(func() {
			for i := 0; i < ntasks; i++ {
				root.Task(th, func(*Thread) { time.Sleep(20 * time.Microsecond) })
			}
		})
		th.Barrier()
		root.Wait(th)
		th.Barrier() // quiesce before reading the plain counters
		th.Master(func() { stats = th.TaskStats() })
	}, WithNumThreads(4))
	if stats.Spawned != ntasks {
		t.Fatalf("Spawned = %d, want %d", stats.Spawned, ntasks)
	}
	if stats.Executed != ntasks {
		t.Fatalf("Executed = %d, want %d", stats.Executed, ntasks)
	}
	if stats.Steals == 0 {
		t.Fatal("no steals recorded: consumers never took work from the producer")
	}
	if stats.Steals > stats.Executed {
		t.Fatalf("Steals = %d exceeds Executed = %d", stats.Steals, stats.Executed)
	}
}

func TestTaskStressProducersThievesNestedGroups(t *testing.T) {
	// Race-detector stress: every thread is simultaneously a producer
	// (own fan-out tree via nested taskgroups), a consumer (its own
	// drain) and a thief (helping others through group waits). Run a few
	// rounds over recycled teams to shake publication/reset bugs too.
	const depth = 6 // 2^6 leaves per thread per round
	for round := 0; round < 3; round++ {
		var leaves atomic.Int64
		Parallel(func(th *Thread) {
			var spawn func(c *Thread, d int)
			spawn = func(c *Thread, d int) {
				if d == 0 {
					leaves.Add(1)
					return
				}
				c.TaskGroup(func(tg *TaskGroup) {
					tg.Task(c, func(e *Thread) { spawn(e, d-1) })
					tg.Task(c, func(e *Thread) { spawn(e, d-1) })
				})
			}
			spawn(th, depth)
			// Plus an implicit-scope burst racing the group traffic.
			for i := 0; i < 64; i++ {
				th.Task(func() { leaves.Add(1) })
			}
			th.TaskWait()
		}, WithNumThreads(4))
		want := int64(4 * (64 + 64)) // 2^depth leaves + 64 plain tasks, per thread
		if got := leaves.Load(); got != want {
			t.Fatalf("round %d: %d leaves, want %d", round, got, want)
		}
	}
}

func TestOrderedRegionSequencesIterations(t *testing.T) {
	const n = 32
	var mu sync.Mutex
	var order []int
	ord := NewOrdered(0, n)
	Parallel(func(th *Thread) {
		th.For(0, n, StaticChunk(1), func(i int) {
			// Unordered part could run any time; the ordered section must
			// execute in iteration order.
			ord.Do(i, func() {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			})
		})
	}, WithNumThreads(4))
	if len(order) != n {
		t.Fatalf("%d ordered executions", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("ordered region ran out of order: %v", order)
		}
	}
}

func TestOrderedRegionWithNonZeroLo(t *testing.T) {
	var got []int
	ord := NewOrdered(5, 9)
	Parallel(func(th *Thread) {
		th.For(5, 9, StaticEqual(), func(i int) {
			ord.Do(i, func() { got = append(got, i) })
		})
	}, WithNumThreads(2))
	want := []int{5, 6, 7, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}
