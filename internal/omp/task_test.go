package omp

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestTaskAllExecuteExactlyOnce(t *testing.T) {
	const ntasks = 50
	var runs [ntasks]atomic.Int32
	Parallel(func(th *Thread) {
		th.Master(func() {
			for i := 0; i < ntasks; i++ {
				th.Task(func() { runs[i].Add(1) })
			}
		})
		th.Barrier()
		th.TaskWait()
	}, WithNumThreads(4))
	for i := range runs {
		if runs[i].Load() != 1 {
			t.Fatalf("task %d ran %d times", i, runs[i].Load())
		}
	}
}

func TestTaskWaitBlocksUntilDone(t *testing.T) {
	var done atomic.Int32
	Parallel(func(th *Thread) {
		if th.ThreadNum() == 0 {
			for i := 0; i < 20; i++ {
				th.Task(func() { done.Add(1) })
			}
			th.TaskWait()
			if done.Load() != 20 {
				t.Errorf("TaskWait returned with %d of 20 tasks done", done.Load())
			}
		}
	}, WithNumThreads(4))
}

func TestRegionEndIsImplicitTaskwait(t *testing.T) {
	var done atomic.Int32
	Parallel(func(th *Thread) {
		th.Task(func() { done.Add(1) })
		// No explicit TaskWait: the region end must still run it.
	}, WithNumThreads(4))
	if done.Load() != 4 {
		t.Fatalf("%d of 4 tasks ran by region end", done.Load())
	}
}

func TestNestedTaskSubmission(t *testing.T) {
	// Tasks submitting tasks: recursive Fork-Join, the merge-sort shape.
	var leaves atomic.Int32
	Parallel(func(th *Thread) {
		th.Master(func() {
			var spawn func(depth int)
			spawn = func(depth int) {
				if depth == 0 {
					leaves.Add(1)
					return
				}
				th.Task(func() { spawn(depth - 1) })
				th.Task(func() { spawn(depth - 1) })
			}
			spawn(5)
		})
		th.Barrier()
		th.TaskWait()
	}, WithNumThreads(4))
	if leaves.Load() != 32 {
		t.Fatalf("%d leaves, want 32", leaves.Load())
	}
}

func TestTasksRunOnMultipleThreads(t *testing.T) {
	var mu sync.Mutex
	executors := map[int]bool{}
	Parallel(func(th *Thread) {
		th.Master(func() {
			for i := 0; i < 200; i++ {
				th.Task(func() {
					mu.Lock()
					executors[th.ThreadNum()] = true
					mu.Unlock()
				})
			}
		})
		th.Barrier()
		th.TaskWait()
	}, WithNumThreads(4))
	// At least the threads that drained participated; exact spread is
	// schedule-dependent, but someone must have run them.
	if len(executors) == 0 {
		t.Fatal("no task executed")
	}
}

func TestOrderedRegionSequencesIterations(t *testing.T) {
	const n = 32
	var mu sync.Mutex
	var order []int
	ord := NewOrdered(0, n)
	Parallel(func(th *Thread) {
		th.For(0, n, StaticChunk(1), func(i int) {
			// Unordered part could run any time; the ordered section must
			// execute in iteration order.
			ord.Do(i, func() {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			})
		})
	}, WithNumThreads(4))
	if len(order) != n {
		t.Fatalf("%d ordered executions", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("ordered region ran out of order: %v", order)
		}
	}
}

func TestOrderedRegionWithNonZeroLo(t *testing.T) {
	var got []int
	ord := NewOrdered(5, 9)
	Parallel(func(th *Thread) {
		th.For(5, 9, StaticEqual(), func(i int) {
			ord.Do(i, func() { got = append(got, i) })
		})
	}, WithNumThreads(2))
	want := []int{5, 6, 7, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}
