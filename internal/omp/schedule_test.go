package omp

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

// collectAssignments runs a worksharing loop and returns, per thread, the
// ordered iterations it executed.
func collectAssignments(n, threads int, sched Schedule) map[int][]int {
	var mu sync.Mutex
	got := map[int][]int{}
	Parallel(func(t *Thread) {
		t.For(0, n, sched, func(i int) {
			mu.Lock()
			got[t.ThreadNum()] = append(got[t.ThreadNum()], i)
			mu.Unlock()
		})
	}, WithNumThreads(threads))
	return got
}

// flatten sorts all executed iterations into one slice.
func flatten(m map[int][]int) []int {
	var all []int
	for _, v := range m {
		all = append(all, v...)
	}
	sort.Ints(all)
	return all
}

// assertExactCoverage checks the fundamental worksharing contract: every
// iteration in [0, n) runs exactly once.
func assertExactCoverage(t *testing.T, m map[int][]int, n int) {
	t.Helper()
	all := flatten(m)
	if len(all) != n {
		t.Fatalf("%d iterations executed, want %d", len(all), n)
	}
	for i, v := range all {
		if v != i {
			t.Fatalf("iteration coverage broken at %d: got %d (all=%v)", i, v, all)
		}
	}
}

func TestStaticEqualCoverage(t *testing.T) {
	for _, tc := range []struct{ n, p int }{
		{8, 1}, {8, 2}, {8, 4}, {8, 3}, {8, 8}, {8, 16}, {1, 4}, {0, 4}, {100, 7},
	} {
		m := collectAssignments(tc.n, tc.p, StaticEqual())
		assertExactCoverage(t, m, tc.n)
	}
}

// TestStaticEqualMatchesPaperFigure15: with 8 iterations on 2 threads,
// thread 0 performs 0–3 and thread 1 performs 4–7.
func TestStaticEqualMatchesPaperFigure15(t *testing.T) {
	m := collectAssignments(8, 2, StaticEqual())
	want := map[int][]int{0: {0, 1, 2, 3}, 1: {4, 5, 6, 7}}
	for tid, iters := range want {
		if !equalInts(m[tid], iters) {
			t.Fatalf("thread %d performed %v, want %v", tid, m[tid], iters)
		}
	}
}

// TestStaticEqualContiguousBlocks: each thread's share is one contiguous
// ascending block.
func TestStaticEqualContiguousBlocks(t *testing.T) {
	m := collectAssignments(100, 7, StaticEqual())
	for tid, iters := range m {
		for k := 1; k < len(iters); k++ {
			if iters[k] != iters[k-1]+1 {
				t.Fatalf("thread %d block not contiguous: %v", tid, iters)
			}
		}
	}
}

// TestChunksOf1Striping: schedule(static,1) assigns iteration i to thread
// i mod p.
func TestChunksOf1Striping(t *testing.T) {
	const n, p = 16, 4
	m := collectAssignments(n, p, StaticChunk(1))
	assertExactCoverage(t, m, n)
	for tid, iters := range m {
		for _, i := range iters {
			if i%p != tid {
				t.Fatalf("thread %d performed iteration %d (stripe broken)", tid, i)
			}
		}
	}
}

func TestStaticChunkRoundRobinBlocks(t *testing.T) {
	const n, p, chunk = 24, 3, 4
	m := collectAssignments(n, p, StaticChunk(chunk))
	assertExactCoverage(t, m, n)
	for tid, iters := range m {
		for _, i := range iters {
			if (i/chunk)%p != tid {
				t.Fatalf("thread %d got iteration %d; block %d should go to thread %d",
					tid, i, i/chunk, (i/chunk)%p)
			}
		}
	}
}

func TestDynamicCoverage(t *testing.T) {
	for _, chunk := range []int{1, 2, 3, 5} {
		m := collectAssignments(50, 4, Dynamic(chunk))
		assertExactCoverage(t, m, 50)
	}
}

func TestGuidedCoverage(t *testing.T) {
	for _, minChunk := range []int{1, 2, 8} {
		m := collectAssignments(100, 4, Guided(minChunk))
		assertExactCoverage(t, m, 100)
	}
}

// TestScheduleCoverageProperty: for any (n, p, schedule, chunk) the
// worksharing contract holds.
func TestScheduleCoverageProperty(t *testing.T) {
	f := func(nRaw, pRaw, chunkRaw uint8, kind uint8) bool {
		n := int(nRaw % 64)
		p := 1 + int(pRaw%8)
		chunk := 1 + int(chunkRaw%5)
		var sched Schedule
		switch kind % 4 {
		case 0:
			sched = StaticEqual()
		case 1:
			sched = StaticChunk(chunk)
		case 2:
			sched = Dynamic(chunk)
		default:
			sched = Guided(chunk)
		}
		m := collectAssignments(n, p, sched)
		all := flatten(m)
		if len(all) != n {
			return false
		}
		for i, v := range all {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestForWithNonZeroLowerBound(t *testing.T) {
	var mu sync.Mutex
	var got []int
	Parallel(func(th *Thread) {
		th.For(10, 20, StaticEqual(), func(i int) {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
		})
	}, WithNumThreads(3))
	sort.Ints(got)
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("got %v, want 10..19", got)
	}
}

func TestForEmptyAndInvertedRanges(t *testing.T) {
	for _, tc := range []struct{ lo, hi int }{{5, 5}, {5, 3}, {0, 0}} {
		ran := 0
		var mu sync.Mutex
		Parallel(func(th *Thread) {
			th.For(tc.lo, tc.hi, StaticEqual(), func(int) {
				mu.Lock()
				ran++
				mu.Unlock()
			})
		}, WithNumThreads(4))
		if ran != 0 {
			t.Fatalf("For(%d, %d) ran %d iterations, want 0", tc.lo, tc.hi, ran)
		}
	}
}

func TestEqualChunkBoundsPaperArithmetic(t *testing.T) {
	// The exact bounds of the paper's Figure 16 code: chunkSize =
	// ceil(REPS/np), last process takes the remainder.
	cases := []struct {
		n, p, id, start, stop int
	}{
		{8, 1, 0, 0, 8},
		{8, 2, 0, 0, 4}, {8, 2, 1, 4, 8},
		{8, 4, 2, 4, 6},
		{8, 3, 0, 0, 3}, {8, 3, 1, 3, 6}, {8, 3, 2, 6, 8},
		{7, 4, 3, 6, 7},
		{2, 4, 0, 0, 1}, {2, 4, 1, 1, 2}, {2, 4, 2, 2, 2}, {2, 4, 3, 2, 2},
	}
	for _, c := range cases {
		start, stop := EqualChunkBounds(c.n, c.p, c.id)
		if start != c.start || stop != c.stop {
			t.Errorf("EqualChunkBounds(%d,%d,%d) = [%d,%d), want [%d,%d)",
				c.n, c.p, c.id, start, stop, c.start, c.stop)
		}
	}
}

func TestEqualChunkBoundsDegenerate(t *testing.T) {
	for _, c := range []struct{ n, p, id int }{
		{8, 0, 0}, {8, 4, -1}, {8, 4, 4}, {0, 4, 0}, {-3, 4, 0},
	} {
		if s, e := EqualChunkBounds(c.n, c.p, c.id); s != 0 || e != 0 {
			t.Errorf("EqualChunkBounds(%d,%d,%d) = [%d,%d), want empty", c.n, c.p, c.id, s, e)
		}
	}
}

// TestEqualChunkBoundsPartitionProperty: the per-task ranges partition
// [0, n) for any n, p.
func TestEqualChunkBoundsPartitionProperty(t *testing.T) {
	f := func(nRaw, pRaw uint16) bool {
		n := int(nRaw % 1000)
		p := 1 + int(pRaw%32)
		covered := 0
		prevStop := 0
		for id := 0; id < p; id++ {
			start, stop := EqualChunkBounds(n, p, id)
			if start > stop || start < prevStop {
				return false
			}
			if start != stop && start != prevStop {
				return false // gap
			}
			covered += stop - start
			if stop > prevStop {
				prevStop = stop
			}
		}
		return covered == n && prevStop == n || (n == 0 && covered == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleString(t *testing.T) {
	cases := map[string]Schedule{
		"static":    StaticEqual(),
		"static,1":  StaticChunk(1),
		"static,5":  StaticChunk(5),
		"dynamic,2": Dynamic(2),
		"guided,3":  Guided(3),
	}
	for want, s := range cases {
		if s.String() != want {
			t.Errorf("String() = %q, want %q", s.String(), want)
		}
	}
}

func TestScheduleChunkClamping(t *testing.T) {
	for _, s := range []Schedule{StaticChunk(0), Dynamic(-3), Guided(0)} {
		if s.chunk != 1 {
			t.Errorf("%v chunk = %d, want clamped to 1", s, s.chunk)
		}
	}
}

func TestParallelForDeliversThreadIDs(t *testing.T) {
	var mu sync.Mutex
	byThread := map[int]int{}
	ParallelFor(32, StaticEqual(), func(i, tid int) {
		mu.Lock()
		byThread[tid]++
		mu.Unlock()
	}, WithNumThreads(4))
	if len(byThread) != 4 {
		t.Fatalf("work ran on %d threads, want 4", len(byThread))
	}
	for tid, count := range byThread {
		if count != 8 {
			t.Fatalf("thread %d ran %d iterations, want 8", tid, count)
		}
	}
}

// TestDynamicSharedCounterIsPerConstruct: two successive dynamic loops in
// one region must not share their chunk counter.
func TestDynamicSharedCounterIsPerConstruct(t *testing.T) {
	var mu sync.Mutex
	first, second := 0, 0
	Parallel(func(th *Thread) {
		th.For(0, 20, Dynamic(1), func(int) {
			mu.Lock()
			first++
			mu.Unlock()
		})
		th.For(0, 20, Dynamic(1), func(int) {
			mu.Lock()
			second++
			mu.Unlock()
		})
	}, WithNumThreads(4))
	if first != 20 || second != 20 {
		t.Fatalf("loops ran %d and %d iterations, want 20 each", first, second)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
