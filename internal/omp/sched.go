package omp

import (
	"runtime"
	"sync/atomic"

	"repro/internal/telemetry"
)

// The work-stealing task scheduler: one taskDeque per team member plus
// the idle/wakeup protocol that connects them. Replaces the shared
// mutex+cond queue the task layer started with — see DESIGN.md §6 for
// the protocol and EXPERIMENTS.md for the before/after numbers.
//
// The moving parts:
//
//   - Submission (Thread.Task, TaskGroup.Task, Taskloop) pushes onto the
//     submitting thread's own deque: no shared lock, no wakeup broadcast.
//     If some team member is idle (nidle > 0) the push publishes
//     immediately and drops one wake token; otherwise it doesn't even
//     pay the atomic store every time (deque.go's deferred publication).
//
//   - Draining (TaskWait, TaskGroup.Wait, region end) runs the caller's
//     own deque first — wholesale, a claimed batch at a time — then
//     turns thief: a randomized sweep over the other deques, stealing
//     FIFO from the first non-empty victim.
//
//   - Idling. A waiter with no runnable work anywhere spins through a
//     few sweeps (yielding the processor between them, same shape as the
//     join spin in omp.go), then parks on the wake channel after
//     registering in nidle. Wakeups are tokens, not broadcasts: a push
//     or a completion that might unblock a waiter sends at most one
//     token per idler, and a spuriously woken waiter just re-scans and
//     re-parks. The nidle registration happens *before* the final
//     re-scan, and a publisher checks nidle *after* its push is visible,
//     so (both operations being seq-cst) at least one side always sees
//     the other — a task cannot sit published while every thread sleeps.
//
//   - Termination. There is no global in-flight counter on the fast
//     path. Completion tracking is per waitNode (taskgroup.go), and
//     implicit (ungrouped) tasks are counted only when they cross
//     threads: a thief increments the task's node before taking it, the
//     executor decrements after running it. A task popped by its own
//     submitter needs no accounting at all — the submitter's TaskWait
//     cannot return before draining its own deque anyway. The region-end
//     implicit taskwait (drainTasks) runs after the join, when the
//     master is the only goroutine left, and simply sweeps every deque
//     until all are empty.

// taskSpinSweeps is how many full steal sweeps a starved waiter makes
// (yielding between them) before parking.
const taskSpinSweeps = 4

type taskScheduler struct {
	deques []taskDeque
	size   int                  // active deques this region (== team size)
	nidle  atomic.Int32         // team members currently parked or about to park
	wake   chan struct{}        // idle-wakeup tokens; buffered to team size
	stats  telemetry.CounterSet // the counter view TaskStats reads; see Thread.TaskStats
}

func newTaskScheduler(size int) *taskScheduler {
	c := size
	if c < 8 {
		c = 8
	}
	s := &taskScheduler{
		deques: make([]taskDeque, size, c),
		size:   size,
		wake:   make(chan struct{}, c),
	}
	return s
}

// reset readies a recycled scheduler for a new region. Quiescent-only.
func (s *taskScheduler) reset(size int) {
	if cap(s.deques) < size {
		s.deques = make([]taskDeque, size)
	}
	s.deques = s.deques[:size]
	for i := range s.deques {
		s.deques[i].reset()
	}
	s.size = size
	s.nidle.Store(0)
	if cap(s.wake) < size {
		s.wake = make(chan struct{}, size)
	}
	for {
		select { // drop stale tokens from the previous region
		case <-s.wake:
		default:
			return
		}
	}
}

// submit pushes tk onto thread id's deque and keeps the idle protocol
// honest: if anyone is parked (or about to park), the push is published
// immediately and one wake token is dropped; otherwise publication is
// batched (deque.go).
func (s *taskScheduler) submit(id int, tk task) {
	d := &s.deques[id]
	d.push(tk)
	if s.nidle.Load() > 0 {
		d.publish()
		s.wakeOne()
	} else if d.botLocal-d.lastPub >= publishGrain {
		d.publish()
	}
}

// flush publishes thread id's deque and wakes idlers if any — the
// scheduling point at region-body exit. A thread that leaves the body
// with deferred tasks still queued (no TaskWait) must make them visible:
// a teammate may be parked waiting on a shared taskgroup they belong to,
// and the departed thread will never push (and so never publish) again.
func (s *taskScheduler) flush(id int) {
	s.deques[id].publish()
	if s.nidle.Load() > 0 {
		s.wakeIdle()
	}
}

// wakeOne drops one token; if the buffer is full every idler already has
// a pending token and nobody can be lost.
func (s *taskScheduler) wakeOne() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// wakeIdle gives every currently-registered idler a token — called when
// a waitNode hits zero, since any of the parked threads may be the one
// waiting on that node.
func (s *taskScheduler) wakeIdle() {
	for n := s.nidle.Load(); n > 0; n-- {
		select {
		case s.wake <- struct{}{}:
		default:
			return
		}
	}
}

// run executes one task on thread t and settles its accounting. stolen
// reports whether the task crossed threads (its node was incremented by
// the thief); counted tasks carry their increment from submission.
func (s *taskScheduler) run(t *Thread, tk task, stolen bool) {
	if t.team.canceled() {
		// Cancelled region: drop the body but settle the completion
		// accounting, so taskwaits and taskgroups parked on this task's
		// node unblock instead of waiting for work that will never run.
		if tk.counted || stolen {
			if tk.node.state.Add(-1) == 0 && s.nidle.Load() > 0 {
				s.wakeIdle()
			}
		}
		return
	}
	d := &s.deques[t.id]
	d.ran++
	// The body dispatch is written out in both branches rather than
	// hoisted into a helper: a helper taking the multi-word task struct
	// by value is over the inlining budget, and the extra call + copy is
	// measurable at the ~12 ns/task scale the scheduler operates at.
	if col := t.team.tele; col != nil {
		sp := col.Begin("omp", "task", t.id)
		if stolen {
			sp.SetArg("stolen", "true")
		}
		if tk.fn != nil {
			tk.fn()
		} else {
			tk.exec(t)
		}
		sp.End()
	} else if tk.fn != nil {
		tk.fn()
	} else {
		tk.exec(t)
	}
	if tk.counted || stolen {
		if tk.node.state.Add(-1) == 0 && s.nidle.Load() > 0 {
			s.wakeIdle()
		}
	}
}

// settleUndo reverses a thief's speculative node increment after a lost
// steal race. The owner ran the task itself (uncounted self-pops carry
// no decrement), so the undo may be the transition to zero a parked
// waiter is blocked on — wake as a completion would.
func (s *taskScheduler) settleUndo(nd *waitNode) {
	if nd.state.Add(-1) == 0 && s.nidle.Load() > 0 {
		s.wakeIdle()
	}
}

// drainOwn runs the calling thread's deque dry. The top-level drain goes
// batch-wise through claim (one mutex round trip per claimBatch tasks);
// a reentrant drain — a task body waiting on a nested taskgroup — falls
// back to one-at-a-time pops so it cannot clobber the claim scratch
// buffer its outer drain is still iterating.
func (s *taskScheduler) drainOwn(t *Thread) {
	d := &s.deques[t.id]
	if d.draining {
		for {
			tk, ok := d.popOne()
			if !ok {
				return
			}
			s.run(t, tk, false)
		}
	}
	d.draining = true
	for {
		batch := d.claim()
		if batch == nil {
			break
		}
		for i := range batch {
			s.run(t, batch[i], false)
		}
	}
	d.draining = false
}

// stealOnce makes one randomized sweep over the other deques and runs
// the first task it can steal. Returns false if nothing was stealable.
func (s *taskScheduler) stealOnce(t *Thread) bool {
	n := s.size
	if n <= 1 {
		return false
	}
	// Cheap per-thread xorshift; no need for math/rand in the hot loop.
	t.stealSeed = t.stealSeed*1664525 + 1013904223
	start := int(t.stealSeed>>16) % n
	if start < 0 {
		start += n
	}
	for k := 0; k < n; k++ {
		v := start + k
		if v >= n {
			v -= n
		}
		if v == t.id {
			continue
		}
		d := &s.deques[v]
		if !d.hasPublished() {
			continue
		}
		// An uncounted task's node is incremented inside steal, before the
		// top CAS, so the submitter cannot observe "deque empty, node
		// zero" while the task is in flight (DESIGN.md §6). On a lost
		// race steal hands back the node to settle here.
		tk, ok, undo := d.steal()
		if undo != nil {
			s.settleUndo(undo)
		}
		if !ok {
			continue
		}
		s.deques[t.id].stole++
		if col := t.team.tele; col != nil {
			// Instant event: thief t.id took a task from victim v.
			col.Instant("omp", "steal", t.id, int64(v))
		}
		s.run(t, tk, true)
		return true
	}
	return false
}

// waitNodeZero blocks thread t until nd.state reaches zero, helping with
// any runnable work in the meantime: drain own deque, then steal; after
// a few fruitless sweeps, park in the idle protocol. Wakeups come from
// submissions (new stealable work) and from node completions.
func (s *taskScheduler) waitNodeZero(t *Thread, nd *waitNode) {
	d := &s.deques[t.id]
	for {
		s.drainOwn(t)
		if nd.state.Load() == 0 {
			return
		}
		if s.stealOnce(t) {
			continue
		}
		// Nothing runnable found; spin a few sweeps before parking.
		stalled := true
		for i := 0; i < taskSpinSweeps; i++ {
			runtime.Gosched()
			if nd.state.Load() == 0 {
				return
			}
			if d.botLocal > d.topCache || s.stealOnce(t) {
				stalled = false
				break
			}
		}
		if !stalled {
			continue
		}
		// Park. Register in nidle first, then re-check the predicate and
		// re-scan: a publisher that misses our registration must have
		// published before it, so this final scan sees its work.
		d.publish()
		s.nidle.Add(1)
		if nd.state.Load() == 0 {
			s.nidle.Add(-1)
			return
		}
		if s.anyPublished(t.id) || d.botLocal > d.topCache {
			s.nidle.Add(-1)
			continue
		}
		<-s.wake
		s.nidle.Add(-1)
	}
}

// anyPublished reports whether any other deque has stealable work.
func (s *taskScheduler) anyPublished(self int) bool {
	for i := 0; i < s.size; i++ {
		if i != self && s.deques[i].hasPublished() {
			return true
		}
	}
	return false
}

// drainAll is the region-end implicit taskwait. It runs on the master
// after the join, when no other team goroutine exists, so plain repeated
// sweeps terminate: any task a drained task spawns lands in some deque
// and is found by a later sweep.
func (s *taskScheduler) drainAll(t *Thread) {
	for {
		s.drainOwn(t)
		progress := false
		for v := 0; v < s.size; v++ {
			if v == t.id {
				continue
			}
			d := &s.deques[v]
			// The owner is gone; adopt its unpublished tail too.
			d.publish()
			for {
				tk, ok, undo := d.steal()
				if undo != nil {
					s.settleUndo(undo)
				}
				if !ok {
					break
				}
				progress = true
				s.run(t, tk, true)
			}
		}
		if !progress && s.deques[t.id].botLocal == s.deques[t.id].topCache &&
			!s.anyPublished(t.id) {
			return
		}
	}
}

// TaskStats is a snapshot of the scheduler's per-region counters, the
// observability hook the steal tests (and curious students) use.
type TaskStats struct {
	Spawned  int64 // tasks submitted
	Executed int64 // tasks run to completion
	Steals   int64 // tasks that crossed threads via the steal path
}

// Telemetry counter names for the task scheduler's aggregates.
const (
	ctrTasksSpawned  = "omp.tasks.spawned"
	ctrTasksExecuted = "omp.tasks.executed"
	ctrTasksStolen   = "omp.tasks.stolen"
)

// sumDeques folds the hot-path per-deque counters. Only well-defined at
// a quiescent point (the fields are owner-goroutine plain writes).
func (s *taskScheduler) sumDeques() (spawned, ran, stole int64) {
	for i := range s.deques[:s.size] {
		d := &s.deques[i]
		spawned += d.pushed
		ran += d.ran
		stole += d.stole
	}
	return
}

// foldInto adds the region's task counter totals to a process-wide
// collector — called by Parallel at region end when telemetry is active,
// so `patternlet run -stats` reports task activity without any explicit
// TaskStats call. Deque counters reset with the region, so successive
// regions accumulate without double counting.
func (s *taskScheduler) foldInto(col *telemetry.Collector) {
	spawned, ran, stole := s.sumDeques()
	col.Counter(ctrTasksSpawned).Add(spawned)
	col.Counter(ctrTasksExecuted).Add(ran)
	col.Counter(ctrTasksStolen).Add(stole)
}

// TaskStats snapshots the team's task counters as a view over the
// telemetry spine: the per-deque hot-path fields are folded into the
// scheduler's telemetry CounterSet, and the returned struct is read back
// from those counters. The underlying fields are plain per-thread
// writes, so the snapshot is only well-defined at a quiescent point:
// call it after a Barrier (with no concurrent task activity) or use the
// value captured by the region for after Parallel returns.
func (t *Thread) TaskStats() TaskStats {
	s := t.sched
	spawned, ran, stole := s.sumDeques()
	cs := &s.stats
	cs.Counter(ctrTasksSpawned).Store(spawned)
	cs.Counter(ctrTasksExecuted).Store(ran)
	cs.Counter(ctrTasksStolen).Store(stole)
	snap := cs.Snapshot()
	return TaskStats{
		Spawned:  snap[ctrTasksSpawned],
		Executed: snap[ctrTasksExecuted],
		Steals:   snap[ctrTasksStolen],
	}
}
