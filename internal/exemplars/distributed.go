package exemplars

import (
	"fmt"
	"math/cmplx"

	"repro/internal/mpi"
)

// The distributed-memory exemplars, built on the MPI runtime.

// DistributedHeat runs explicit 1-D heat diffusion with the domain
// decomposed across np ranks — the Message Passing / halo-exchange
// exemplar. Each rank owns a contiguous block of cells plus two ghost
// cells it refreshes from its Cartesian neighbours every step; the rod's
// ends are insulated. It returns the final temperature field, gathered at
// the root.
//
// This is the distributed sibling of the shared-memory examples/heat
// stencil: the same physics, with the barrier replaced by neighbour
// messages.
func DistributedHeat(np, cells, steps int, alpha float64, opts ...mpi.Option) ([]float64, error) {
	if np < 1 || cells < np || cells%np != 0 || steps < 0 {
		return nil, fmt.Errorf("%w: np=%d cells=%d steps=%d", ErrBadInput, np, cells, steps)
	}
	var result []float64
	err := mpi.Run(np, func(c *mpi.Comm) error {
		ct, err := mpi.NewCart(c, []int{np}, nil) // non-periodic line of ranks
		if err != nil {
			return err
		}
		local := cells / np
		// cur[1..local] are owned cells; cur[0] and cur[local+1] are ghosts.
		cur := make([]float64, local+2)
		next := make([]float64, local+2)
		// Initial condition: a unit spike at the global middle cell.
		mid := cells / 2
		lo := c.Rank() * local
		if mid >= lo && mid < lo+local {
			cur[mid-lo+1] = 1000.0
		}

		for s := 0; s < steps; s++ {
			// Halo exchange: send the right edge rightward / receive the
			// left ghost, then the mirror image.
			rightGhost := cur[local] // value my right neighbour needs
			leftGhost := cur[1]      // value my left neighbour needs
			fromLeft, err := mpi.SendrecvShift(ct, rightGhost, 0, 1, 1)
			if err != nil {
				return err
			}
			fromRight, err := mpi.SendrecvShift(ct, leftGhost, 0, -1, 2)
			if err != nil {
				return err
			}
			src, dst, err := ct.Shift(0, 1)
			if err != nil {
				return err
			}
			if src != mpi.ProcNull {
				cur[0] = fromLeft
			} else {
				cur[0] = cur[1] // insulated end: mirror boundary
			}
			if dst != mpi.ProcNull {
				cur[local+1] = fromRight
			} else {
				cur[local+1] = cur[local]
			}
			for i := 1; i <= local; i++ {
				next[i] = cur[i] + alpha*(cur[i-1]-2*cur[i]+cur[i+1])
			}
			cur, next = next, cur
		}

		field, err := mpi.Gather(c, cur[1:local+1], 0)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			result = field
		}
		return nil
	}, opts...)
	if err != nil {
		return nil, err
	}
	return result, nil
}

// SequentialHeat is the single-process reference for DistributedHeat.
func SequentialHeat(cells, steps int, alpha float64) []float64 {
	cur := make([]float64, cells)
	next := make([]float64, cells)
	cur[cells/2] = 1000.0
	at := func(s []float64, i int) float64 {
		if i < 0 {
			return s[0] // insulated ends mirror the edge cell
		}
		if i >= cells {
			return s[cells-1]
		}
		return s[i]
	}
	for s := 0; s < steps; s++ {
		for i := 0; i < cells; i++ {
			next[i] = cur[i] + alpha*(at(cur, i-1)-2*cur[i]+at(cur, i+1))
		}
		cur, next = next, cur
	}
	return cur
}

// MandelbrotRow computes the iteration counts for one row of the
// Mandelbrot set over the region [-2, 1) × [-1.5, 1.5), at the given
// image resolution.
func MandelbrotRow(row, width, height, maxIter int) []int {
	out := make([]int, width)
	ci := -1.5 + 3.0*float64(row)/float64(height)
	for x := 0; x < width; x++ {
		cr := -2.0 + 3.0*float64(x)/float64(width)
		z := complex(0, 0)
		cc := complex(cr, ci)
		n := 0
		for ; n < maxIter; n++ {
			z = z*z + cc
			if cmplx.Abs(z) > 2 {
				break
			}
		}
		out[x] = n
	}
	return out
}

// mandelMsg tags for the task farm.
const (
	mandelTagWork   = 10 // master -> worker: row index to compute
	mandelTagResult = 11 // worker -> master: (row, counts)
	mandelTagStop   = 12 // master -> worker: no more work
)

type mandelResult struct {
	Row    int
	Counts []int
}

// Mandelbrot renders a width×height iteration-count image using the
// Master-Worker pattern as a dynamic task farm over np ranks: the master
// hands out one row at a time to whichever worker returns first, so slow
// rows (deep in the set) never stall the others. np must be >= 2 (one
// master plus at least one worker). The image is returned at the caller.
func Mandelbrot(np, width, height, maxIter int, opts ...mpi.Option) ([][]int, error) {
	if np < 2 || width < 1 || height < 1 || maxIter < 1 {
		return nil, fmt.Errorf("%w: np=%d image=%dx%d maxIter=%d", ErrBadInput, np, width, height, maxIter)
	}
	var image [][]int
	err := mpi.Run(np, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			img := make([][]int, height)
			nextRow := 0
			// Prime every worker with one row (or stop it immediately).
			for w := 1; w < c.Size(); w++ {
				if nextRow < height {
					if err := mpi.Send(c, nextRow, w, mandelTagWork); err != nil {
						return err
					}
					nextRow++
				} else {
					if err := mpi.Send(c, -1, w, mandelTagStop); err != nil {
						return err
					}
				}
			}
			outstanding := min(height, c.Size()-1)
			for outstanding > 0 {
				res, st, err := mpi.Recv[mandelResult](c, mpi.AnySource, mandelTagResult)
				if err != nil {
					return err
				}
				img[res.Row] = res.Counts
				if nextRow < height {
					if err := mpi.Send(c, nextRow, st.Source, mandelTagWork); err != nil {
						return err
					}
					nextRow++
				} else {
					if err := mpi.Send(c, -1, st.Source, mandelTagStop); err != nil {
						return err
					}
					outstanding--
				}
			}
			image = img
			return nil
		}
		// Worker: loop requesting work until stopped.
		for {
			row, st, err := mpi.Recv[int](c, 0, mpi.AnyTag)
			if err != nil {
				return err
			}
			if st.Tag == mandelTagStop {
				return nil
			}
			counts := MandelbrotRow(row, width, height, maxIter)
			if err := mpi.Send(c, mandelResult{Row: row, Counts: counts}, 0, mandelTagResult); err != nil {
				return err
			}
		}
	}, opts...)
	if err != nil {
		return nil, err
	}
	return image, nil
}

// DotProduct computes x·y with the full Scatter → local work → Reduce
// pipeline over np ranks. len(x) == len(y) must be a multiple of np.
func DotProduct(np int, x, y []float64, opts ...mpi.Option) (float64, error) {
	if len(x) != len(y) || np < 1 || len(x)%np != 0 {
		return 0, fmt.Errorf("%w: len(x)=%d len(y)=%d np=%d", ErrBadInput, len(x), len(y), np)
	}
	var result float64
	err := mpi.Run(np, func(c *mpi.Comm) error {
		var sx, sy []float64
		if c.Rank() == 0 {
			sx, sy = x, y
		}
		px, err := mpi.Scatter(c, sx, 0)
		if err != nil {
			return err
		}
		py, err := mpi.Scatter(c, sy, 0)
		if err != nil {
			return err
		}
		local := 0.0
		for i := range px {
			local += px[i] * py[i]
		}
		total, err := mpi.Reduce(c, local, mpi.Sum[float64](), 0)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			result = total
		}
		return nil
	}, opts...)
	return result, err
}
