package exemplars

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]float64, 50000)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	want, err := SequentialHistogram(data, 32, -4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 2, 4, 8} {
		got, err := Histogram(data, 32, -4, 4, threads)
		if err != nil {
			t.Fatal(err)
		}
		for b := range want {
			if got[b] != want[b] {
				t.Fatalf("threads=%d bin %d: %d != %d", threads, b, got[b], want[b])
			}
		}
	}
}

func TestHistogramTotalConservation(t *testing.T) {
	data := []float64{0.1, 0.5, 0.9, 0.5, 0.5, -1, 2} // two outside [0,1)
	h, err := Histogram(data, 4, 0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range h {
		total += c
	}
	if total != 5 {
		t.Fatalf("histogram holds %d values, want 5 (outliers dropped)", total)
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	// Values exactly at min land in bin 0; values at max are excluded;
	// values just below max land in the last bin.
	h, err := Histogram([]float64{0, 0.999999, 1.0}, 10, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h[0] != 1 || h[9] != 1 {
		t.Fatalf("edge binning wrong: %v", h)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := Histogram(nil, 0, 0, 1, 2); !errors.Is(err, ErrBadInput) {
		t.Fatal("bins=0 accepted")
	}
	if _, err := Histogram(nil, 4, 1, 1, 2); !errors.Is(err, ErrBadInput) {
		t.Fatal("empty range accepted")
	}
	if _, err := SequentialHistogram(nil, 0, 0, 1); !errors.Is(err, ErrBadInput) {
		t.Fatal("sequential bins=0 accepted")
	}
}

// TestHistogramProperty: parallel equals sequential for random data and
// configurations.
func TestHistogramProperty(t *testing.T) {
	f := func(seed int64, binsRaw, threadsRaw uint8) bool {
		bins := 1 + int(binsRaw%30)
		threads := 1 + int(threadsRaw%6)
		rng := rand.New(rand.NewSource(seed))
		data := make([]float64, 500)
		for i := range data {
			data[i] = rng.Float64()*3 - 1
		}
		seq, err1 := SequentialHistogram(data, bins, 0, 1)
		par, err2 := Histogram(data, bins, 0, 1, threads)
		if err1 != nil || err2 != nil {
			return false
		}
		for b := range seq {
			if seq[b] != par[b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// --- Game of Life (Barrier exemplar) --------------------------------------

// blinker is the period-2 oscillator.
var blinker = [][2]int{{2, 1}, {2, 2}, {2, 3}}

func TestLifeBlinkerOscillates(t *testing.T) {
	l, err := NewLife(5, 5, blinker)
	if err != nil {
		t.Fatal(err)
	}
	l.Step(1, 4)
	// Horizontal blinker becomes vertical.
	for _, rc := range [][2]int{{1, 2}, {2, 2}, {3, 2}} {
		if !l.Alive(rc[0], rc[1]) {
			t.Fatalf("vertical blinker cell (%d,%d) dead", rc[0], rc[1])
		}
	}
	if l.Population() != 3 {
		t.Fatalf("population %d, want 3", l.Population())
	}
	l.Step(1, 4)
	for _, rc := range blinker {
		if !l.Alive(rc[0], rc[1]) {
			t.Fatalf("blinker did not return after two generations")
		}
	}
}

func TestLifeBlockIsStill(t *testing.T) {
	block := [][2]int{{1, 1}, {1, 2}, {2, 1}, {2, 2}}
	l, _ := NewLife(4, 4, block)
	l.Step(5, 3)
	if l.Population() != 4 {
		t.Fatalf("still life changed: population %d", l.Population())
	}
	for _, rc := range block {
		if !l.Alive(rc[0], rc[1]) {
			t.Fatal("block cell died")
		}
	}
}

func TestLifeParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var live [][2]int
	for i := 0; i < 120; i++ {
		live = append(live, [2]int{rng.Intn(16), rng.Intn(16)})
	}
	seq, _ := NewLife(16, 16, live)
	seq.StepSequential(8)
	for _, threads := range []int{1, 2, 4, 5} {
		par, _ := NewLife(16, 16, live)
		par.Step(8, threads)
		sc, pc := seq.Cells(), par.Cells()
		for i := range sc {
			if sc[i] != pc[i] {
				t.Fatalf("threads=%d: grids diverge at cell %d", threads, i)
			}
		}
	}
}

func TestLifeToroidalWrap(t *testing.T) {
	// A blinker crossing the edge must wrap.
	l, _ := NewLife(5, 5, [][2]int{{0, 4}, {0, 0}, {0, 1}})
	l.Step(1, 2)
	for _, rc := range [][2]int{{4, 0}, {0, 0}, {1, 0}} {
		if !l.Alive(rc[0], rc[1]) {
			t.Fatalf("toroidal blinker missing cell (%d,%d)", rc[0], rc[1])
		}
	}
}

func TestLifeValidation(t *testing.T) {
	if _, err := NewLife(0, 5, nil); !errors.Is(err, ErrBadInput) {
		t.Fatal("0 rows accepted")
	}
	l, _ := NewLife(3, 3, nil)
	l.Step(0, 4) // no generations: a no-op, not a hang
	if l.Population() != 0 {
		t.Fatal("empty grid changed")
	}
}

// --- Distributed heat (halo exchange exemplar) -----------------------------

func TestDistributedHeatMatchesSequential(t *testing.T) {
	const cells, steps = 64, 50
	want := SequentialHeat(cells, steps, 0.25)
	for _, np := range []int{1, 2, 4, 8} {
		got, err := DistributedHeat(np, cells, steps, 0.25)
		if err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
		if len(got) != cells {
			t.Fatalf("np=%d: %d cells", np, len(got))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("np=%d cell %d: %v != %v", np, i, got[i], want[i])
			}
		}
	}
}

func TestDistributedHeatConservesEnergy(t *testing.T) {
	field, err := DistributedHeat(4, 128, 200, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, v := range field {
		total += v
	}
	if math.Abs(total-1000.0) > 1e-6 {
		t.Fatalf("heat not conserved: %v", total)
	}
}

func TestDistributedHeatValidation(t *testing.T) {
	if _, err := DistributedHeat(3, 64, 10, 0.25); !errors.Is(err, ErrBadInput) {
		t.Fatal("indivisible cells accepted")
	}
	if _, err := DistributedHeat(0, 64, 10, 0.25); !errors.Is(err, ErrBadInput) {
		t.Fatal("np=0 accepted")
	}
}

// --- Mandelbrot (master-worker exemplar) -----------------------------------

func TestMandelbrotMatchesRowByRow(t *testing.T) {
	const w, h, iters = 32, 24, 64
	img, err := Mandelbrot(4, w, h, iters)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != h {
		t.Fatalf("%d rows", len(img))
	}
	for r := 0; r < h; r++ {
		want := MandelbrotRow(r, w, h, iters)
		if len(img[r]) != w {
			t.Fatalf("row %d missing or short (%d)", r, len(img[r]))
		}
		for x := range want {
			if img[r][x] != want[x] {
				t.Fatalf("pixel (%d,%d): %d != %d", r, x, img[r][x], want[x])
			}
		}
	}
}

func TestMandelbrotInteriorHitsMaxIter(t *testing.T) {
	row := MandelbrotRow(12, 32, 24, 100) // middle row passes through the set
	sawMax := false
	for _, n := range row {
		if n == 100 {
			sawMax = true
		}
	}
	if !sawMax {
		t.Fatal("no interior point reached maxIter on the central row")
	}
}

func TestMandelbrotMoreWorkersThanRows(t *testing.T) {
	img, err := Mandelbrot(6, 16, 3, 32) // 5 workers, 3 rows
	if err != nil {
		t.Fatal(err)
	}
	for r := range img {
		if img[r] == nil {
			t.Fatalf("row %d never computed", r)
		}
	}
}

func TestMandelbrotValidation(t *testing.T) {
	if _, err := Mandelbrot(1, 8, 8, 10); !errors.Is(err, ErrBadInput) {
		t.Fatal("np=1 accepted (needs at least one worker)")
	}
	if _, err := Mandelbrot(2, 0, 8, 10); !errors.Is(err, ErrBadInput) {
		t.Fatal("width=0 accepted")
	}
}

// --- Dot product (scatter/reduce exemplar) ----------------------------------

func TestDotProductMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 1024
	x := make([]float64, n)
	y := make([]float64, n)
	want := 0.0
	for i := range x {
		x[i] = rng.Float64()
		y[i] = rng.Float64()
		want += x[i] * y[i]
	}
	for _, np := range []int{1, 2, 4, 8} {
		got, err := DotProduct(np, x, y)
		if err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
		if math.Abs(got-want) > 1e-9*math.Abs(want) {
			t.Fatalf("np=%d: %v != %v", np, got, want)
		}
	}
}

func TestDotProductValidation(t *testing.T) {
	if _, err := DotProduct(2, []float64{1}, []float64{1, 2}); !errors.Is(err, ErrBadInput) {
		t.Fatal("length mismatch accepted")
	}
	if _, err := DotProduct(3, make([]float64, 4), make([]float64, 4)); !errors.Is(err, ErrBadInput) {
		t.Fatal("indivisible length accepted")
	}
}
