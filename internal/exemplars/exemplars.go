// Package exemplars implements the second half of the paper's teaching
// strategy (§V): "After this first exposure, we believe it is important
// to show students an exemplar — a 'real world' problem whose solution
// uses the same pattern(s)." Each exemplar here is a small but genuine
// computation built on exactly the patterns its patternlet introduced:
//
//   - Histogram       — Reduction + Parallel Loop (private bins, merged)
//   - GameOfLife      — Barrier (stencil generations on a shared grid)
//   - DistributedHeat — Message Passing + Cartesian halo exchange (MPI)
//   - Mandelbrot      — Master-Worker dynamic task farm (MPI)
//   - DotProduct      — Scatter + Reduction (MPI collectives end to end)
package exemplars

import (
	"errors"
	"fmt"

	"repro/internal/omp"
)

// ErrBadInput reports invalid exemplar parameters.
var ErrBadInput = errors.New("exemplars: invalid input")

// Histogram counts value frequencies over data into `bins` buckets in
// [min, max), using the reduction discipline the patternlets teach: each
// thread fills a private histogram over its loop share, and the private
// copies are merged — no shared counter is ever updated concurrently.
func Histogram(data []float64, bins int, min, max float64, threads int) ([]int64, error) {
	if bins < 1 || max <= min || threads < 1 {
		return nil, fmt.Errorf("%w: bins=%d range=[%v,%v) threads=%d", ErrBadInput, bins, min, max, threads)
	}
	width := (max - min) / float64(bins)
	result := make([]int64, bins)
	omp.Parallel(func(t *omp.Thread) {
		private := make([]int64, bins) // the "private copy" of the reduction variable
		t.ForNoWait(0, len(data), omp.StaticEqual(), func(i int) {
			v := data[i]
			if v < min || v >= max {
				return
			}
			b := int((v - min) / width)
			if b >= bins { // guard the max-edge rounding case
				b = bins - 1
			}
			private[b]++
		})
		// Merge under mutual exclusion: one critical section per thread,
		// not per element — the cheap way to combine private results.
		t.Critical("merge", func() {
			for b, c := range private {
				result[b] += c
			}
		})
	}, omp.WithNumThreads(threads))
	return result, nil
}

// SequentialHistogram is the baseline the parallel version must match.
func SequentialHistogram(data []float64, bins int, min, max float64) ([]int64, error) {
	if bins < 1 || max <= min {
		return nil, fmt.Errorf("%w: bins=%d range=[%v,%v)", ErrBadInput, bins, min, max)
	}
	width := (max - min) / float64(bins)
	out := make([]int64, bins)
	for _, v := range data {
		if v < min || v >= max {
			continue
		}
		b := int((v - min) / width)
		if b >= bins {
			b = bins - 1
		}
		out[b]++
	}
	return out, nil
}

// Life is a toroidal Game of Life grid — the Barrier exemplar: each
// generation every thread updates its block of rows into the next buffer,
// and a barrier separates the generations so no thread reads a
// half-written neighbourhood.
type Life struct {
	rows, cols int
	cur, next  []bool
}

// NewLife creates a rows×cols toroidal grid with the given live cells.
func NewLife(rows, cols int, live [][2]int) (*Life, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("%w: grid %dx%d", ErrBadInput, rows, cols)
	}
	l := &Life{rows: rows, cols: cols, cur: make([]bool, rows*cols), next: make([]bool, rows*cols)}
	for _, rc := range live {
		r := ((rc[0] % rows) + rows) % rows
		c := ((rc[1] % cols) + cols) % cols
		l.cur[r*cols+c] = true
	}
	return l, nil
}

// Alive reports whether cell (r, c) is live (toroidal indexing).
func (l *Life) Alive(r, c int) bool {
	r = ((r % l.rows) + l.rows) % l.rows
	c = ((c % l.cols) + l.cols) % l.cols
	return l.cur[r*l.cols+c]
}

// Population returns the live-cell count.
func (l *Life) Population() int {
	n := 0
	for _, v := range l.cur {
		if v {
			n++
		}
	}
	return n
}

func (l *Life) neighbours(r, c int) int {
	n := 0
	for dr := -1; dr <= 1; dr++ {
		for dc := -1; dc <= 1; dc++ {
			if dr == 0 && dc == 0 {
				continue
			}
			if l.Alive(r+dr, c+dc) {
				n++
			}
		}
	}
	return n
}

// Step advances the grid by generations using a team of threads, with a
// barrier between the compute and swap phases of every generation.
func (l *Life) Step(generations, threads int) {
	if generations < 1 {
		return
	}
	if threads < 1 {
		threads = 1
	}
	omp.Parallel(func(t *omp.Thread) {
		for g := 0; g < generations; g++ {
			t.ForNoWait(0, l.rows, omp.StaticEqual(), func(r int) {
				for c := 0; c < l.cols; c++ {
					n := l.neighbours(r, c)
					alive := l.cur[r*l.cols+c]
					l.next[r*l.cols+c] = n == 3 || (alive && n == 2)
				}
			})
			t.Barrier() // every cell of `next` written before the swap
			t.Single(func() { l.cur, l.next = l.next, l.cur })
			// Single's implicit barrier keeps generation g+1's reads
			// behind the swap.
		}
	}, omp.WithNumThreads(threads))
}

// StepSequential is the baseline single-threaded generation stepper.
func (l *Life) StepSequential(generations int) {
	for g := 0; g < generations; g++ {
		for r := 0; r < l.rows; r++ {
			for c := 0; c < l.cols; c++ {
				n := l.neighbours(r, c)
				alive := l.cur[r*l.cols+c]
				l.next[r*l.cols+c] = n == 3 || (alive && n == 2)
			}
		}
		l.cur, l.next = l.next, l.cur
	}
}

// Cells returns a copy of the live-cell grid (row-major booleans).
func (l *Life) Cells() []bool {
	out := make([]bool, len(l.cur))
	copy(out, l.cur)
	return out
}
