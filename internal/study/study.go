// Package study reproduces the paper's §IV.B evaluation: the comparison of
// final-exam performance between the Fall CS2 section taught without
// patternlets and the Spring section taught with them.
//
// The paper reports only summary statistics — Fall: n=41, mean 2.95/4;
// Spring: n=38, mean 3.05/4; two-sided p = 0.293 — and not the raw scores
// or standard deviations. Per the substitution rule, we (1) invert the
// published p-value to recover the implied common standard deviation,
// (2) generate seeded synthetic cohorts whose sample mean and SD match the
// published/implied values exactly, and (3) run the same Welch t-test
// pipeline a statistics package would have run on the real data. The
// analysis artifact (the table of means, t, df, p) is then regenerated
// end to end.
package study

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/stats"
)

// The published §IV.B numbers.
const (
	FallN      = 41   // "no patternlets" group (Fall course)
	FallMean   = 2.95 // out of 4 exam points
	SpringN    = 38   // "with patternlets" group (Spring course)
	SpringMean = 3.05
	PaperP     = 0.293 // reported two-sided p-value
	MaxScore   = 4.0   // four final-exam questions on parallelism/OpenMP
	Questions  = 4
)

// ImpliedSD inverts the paper's p-value: assuming both cohorts share a
// common standard deviation σ, it returns the σ for which a Welch t-test
// on the published means and sizes yields exactly PaperP.
func ImpliedSD() float64 {
	// With equal SDs the Welch–Satterthwaite df depends only on n1, n2.
	a := 1.0 / FallN
	b := 1.0 / SpringN
	df := (a + b) * (a + b) / (a*a/(FallN-1) + b*b/(SpringN-1))
	tStar := stats.CriticalT(PaperP, df)
	return (SpringMean - FallMean) / (tStar * math.Sqrt(a+b))
}

// Cohort is one group of simulated students.
type Cohort struct {
	Name   string
	Scores []float64   // total exam score per student, out of MaxScore
	PerQ   [][]float64 // per-student breakdown over the four questions
}

// Summary returns the cohort's descriptive statistics.
func (c Cohort) Summary() stats.Summary {
	s, _ := stats.Summarize(c.Scores)
	return s
}

// GenerateCohort draws n student scores from a normal model and then
// standardizes the sample so its mean and SD equal the targets *exactly* —
// the synthetic cohort is thus guaranteed to reproduce the published
// summary statistics, while individual scores vary with the seed. Each
// total is also decomposed into four per-question scores in [0, 1].
func GenerateCohort(rng *rand.Rand, name string, n int, mean, sd float64) Cohort {
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = rng.NormFloat64()
	}
	// Standardize the raw draws to exactly zero mean, unit SD…
	m, _ := stats.Mean(scores)
	for i := range scores {
		scores[i] -= m
	}
	s, _ := stats.StdDev(scores)
	if s == 0 {
		s = 1
	}
	// …then transform to the target moments.
	for i := range scores {
		scores[i] = mean + scores[i]*sd/s
	}

	perQ := make([][]float64, n)
	for i, total := range scores {
		perQ[i] = splitScore(rng, total)
	}
	return Cohort{Name: name, Scores: scores, PerQ: perQ}
}

// splitScore decomposes a total into Questions per-question scores, each
// clamped to [0, 1], that sum approximately to the total (exactly when the
// total lies in [0, MaxScore]).
func splitScore(rng *rand.Rand, total float64) []float64 {
	q := make([]float64, Questions)
	remaining := total
	for i := 0; i < Questions; i++ {
		left := Questions - i - 1
		lo := remaining - float64(left) // must leave at most 1 per later question
		hi := remaining
		if lo < 0 {
			lo = 0
		}
		if hi > 1 {
			hi = 1
		}
		var v float64
		if hi <= lo {
			v = math.Max(0, math.Min(1, lo))
		} else {
			v = lo + rng.Float64()*(hi-lo)
		}
		q[i] = v
		remaining -= v
	}
	return q
}

// Result is the regenerated §IV.B analysis.
type Result struct {
	Fall, Spring     Cohort
	FallSummary      stats.Summary
	SpringSummary    stats.Summary
	Welch            stats.TTestResult // on the synthetic cohorts
	WelchFromSummary stats.TTestResult // on the published summary statistics
	ImprovementPct   float64           // the paper's "2.5% improvement"
	SignificantAt05  bool
}

// Run generates both cohorts with the given seed and performs the full
// analysis.
func Run(seed int64) (Result, error) {
	sd := ImpliedSD()
	rng := rand.New(rand.NewSource(seed))
	fall := GenerateCohort(rng, "Fall (no patternlets)", FallN, FallMean, sd)
	spring := GenerateCohort(rng, "Spring (with patternlets)", SpringN, SpringMean, sd)

	welch, err := stats.WelchTTestSamples(spring.Scores, fall.Scores)
	if err != nil {
		return Result{}, err
	}
	fromSummary, err := stats.WelchTTest(SpringMean, sd, SpringN, FallMean, sd, FallN)
	if err != nil {
		return Result{}, err
	}
	fs := fall.Summary()
	ss := spring.Summary()
	return Result{
		Fall: fall, Spring: spring,
		FallSummary: fs, SpringSummary: ss,
		Welch:            welch,
		WelchFromSummary: fromSummary,
		ImprovementPct:   (ss.Mean - fs.Mean) / MaxScore * 100,
		SignificantAt05:  welch.P < 0.05,
	}, nil
}

// Table renders the analysis as the §IV.B comparison table.
func (r Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Final-exam performance on the four parallelism/OpenMP questions (out of %.0f)\n\n", MaxScore)
	fmt.Fprintf(&b, "%-28s %4s %8s %8s\n", "group", "n", "mean", "sd")
	fmt.Fprintf(&b, "%-28s %4d %8.2f %8.3f\n", r.Fall.Name, r.FallSummary.N, r.FallSummary.Mean, r.FallSummary.SD)
	fmt.Fprintf(&b, "%-28s %4d %8.2f %8.3f\n", r.Spring.Name, r.SpringSummary.N, r.SpringSummary.Mean, r.SpringSummary.SD)
	fmt.Fprintf(&b, "\nimprovement: %+.1f%% of max score\n", r.ImprovementPct)
	fmt.Fprintf(&b, "Welch t-test (synthetic cohorts):     t = %.3f  df = %.1f  p = %.3f\n", r.Welch.T, r.Welch.DF, r.Welch.P)
	fmt.Fprintf(&b, "Welch t-test (published summaries):   t = %.3f  df = %.1f  p = %.3f\n", r.WelchFromSummary.T, r.WelchFromSummary.DF, r.WelchFromSummary.P)
	fmt.Fprintf(&b, "paper reports:                        p = %.3f (not significant)\n", PaperP)
	if r.SignificantAt05 {
		fmt.Fprintf(&b, "verdict: significant at alpha = 0.05 — DISAGREES with the paper\n")
	} else {
		fmt.Fprintf(&b, "verdict: not significant at alpha = 0.05 — matches the paper\n")
	}
	return b.String()
}

// QuestionMeans returns the per-question mean score (0..1) for the
// cohort, the breakdown instructors inspect to see which of the four
// exam questions drove the difference.
func (c Cohort) QuestionMeans() []float64 {
	means := make([]float64, Questions)
	if len(c.PerQ) == 0 {
		return means
	}
	for _, qs := range c.PerQ {
		for q, v := range qs {
			means[q] += v
		}
	}
	for q := range means {
		means[q] /= float64(len(c.PerQ))
	}
	return means
}

// QuestionTable renders the per-question comparison between the cohorts.
func (r Result) QuestionTable() string {
	var b strings.Builder
	fm := r.Fall.QuestionMeans()
	sm := r.Spring.QuestionMeans()
	fmt.Fprintf(&b, "per-question mean score (0..1)\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %10s\n", "question", "Fall", "Spring", "delta")
	for q := 0; q < Questions; q++ {
		fmt.Fprintf(&b, "%-10d %10.3f %10.3f %+10.3f\n", q+1, fm[q], sm[q], sm[q]-fm[q])
	}
	var ft, st float64
	for q := 0; q < Questions; q++ {
		ft += fm[q]
		st += sm[q]
	}
	fmt.Fprintf(&b, "%-10s %10.3f %10.3f %+10.3f   (x4 = the exam means %.2f vs %.2f)\n",
		"total/4", ft/Questions, st/Questions, (st-ft)/Questions, ft, st)
	return b.String()
}
