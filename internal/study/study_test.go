package study

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/stats"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestImpliedSDInvertsPaperP: plugging the implied SD back into the Welch
// test must return exactly the published p-value.
func TestImpliedSDInvertsPaperP(t *testing.T) {
	sd := ImpliedSD()
	if sd <= 0 || sd > MaxScore {
		t.Fatalf("implied SD = %v, implausible", sd)
	}
	r, err := stats.WelchTTest(SpringMean, sd, SpringN, FallMean, sd, FallN)
	if err != nil {
		t.Fatal(err)
	}
	if !close(r.P, PaperP, 1e-6) {
		t.Fatalf("round-trip p = %v, want %v", r.P, PaperP)
	}
}

// TestCohortMatchesTargetsExactly: the standardization guarantees the
// synthetic cohort's sample mean and SD equal the published values.
func TestCohortMatchesTargetsExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := GenerateCohort(rng, "Fall", FallN, FallMean, 0.42)
	s := c.Summary()
	if s.N != FallN {
		t.Fatalf("N = %d", s.N)
	}
	if !close(s.Mean, FallMean, 1e-9) {
		t.Fatalf("mean = %v, want %v", s.Mean, FallMean)
	}
	if !close(s.SD, 0.42, 1e-9) {
		t.Fatalf("sd = %v, want 0.42", s.SD)
	}
}

func TestCohortPerQuestionDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := GenerateCohort(rng, "Spring", SpringN, SpringMean, 0.42)
	if len(c.PerQ) != SpringN {
		t.Fatalf("PerQ has %d rows", len(c.PerQ))
	}
	for i, qs := range c.PerQ {
		if len(qs) != Questions {
			t.Fatalf("student %d has %d question scores", i, len(qs))
		}
		sum := 0.0
		for _, q := range qs {
			if q < 0 || q > 1 {
				t.Fatalf("student %d question score %v out of [0,1]", i, q)
			}
			sum += q
		}
		total := c.Scores[i]
		// Decomposition is exact when the total is within [0, 4]; totals
		// outside (possible after exact standardization) clamp.
		if total >= 0 && total <= MaxScore && !close(sum, total, 1e-9) {
			t.Fatalf("student %d: questions sum to %v, total %v", i, sum, total)
		}
	}
}

func TestRunReproducesPaperTable(t *testing.T) {
	r, err := Run(2015)
	if err != nil {
		t.Fatal(err)
	}
	if !close(r.FallSummary.Mean, FallMean, 1e-9) || !close(r.SpringSummary.Mean, SpringMean, 1e-9) {
		t.Fatalf("means (%v, %v)", r.FallSummary.Mean, r.SpringSummary.Mean)
	}
	if !close(r.Welch.P, PaperP, 1e-6) {
		t.Fatalf("synthetic-cohort p = %v, want %v", r.Welch.P, PaperP)
	}
	if !close(r.WelchFromSummary.P, PaperP, 1e-6) {
		t.Fatalf("summary p = %v, want %v", r.WelchFromSummary.P, PaperP)
	}
	if r.SignificantAt05 {
		t.Fatal("the paper's result must not be significant at 0.05")
	}
	if !close(r.ImprovementPct, 2.5, 1e-9) {
		t.Fatalf("improvement = %v%%, paper says 2.5%%", r.ImprovementPct)
	}
	if r.Welch.T <= 0 {
		t.Fatal("Spring mean is higher; t should be positive")
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	a, err := Run(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Fall.Scores {
		if a.Fall.Scores[i] != b.Fall.Scores[i] {
			t.Fatal("same seed produced different cohorts")
		}
	}
}

func TestDifferentSeedsDifferentStudentsSameSummary(t *testing.T) {
	a, _ := Run(1)
	b, _ := Run(2)
	same := true
	for i := range a.Fall.Scores {
		if a.Fall.Scores[i] != b.Fall.Scores[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical cohorts")
	}
	if !close(a.FallSummary.Mean, b.FallSummary.Mean, 1e-9) ||
		!close(a.FallSummary.SD, b.FallSummary.SD, 1e-9) {
		t.Fatal("summary statistics must be seed-independent")
	}
}

func TestTableContents(t *testing.T) {
	r, err := Run(2015)
	if err != nil {
		t.Fatal(err)
	}
	table := r.Table()
	for _, want := range []string{
		"Fall (no patternlets)",
		"Spring (with patternlets)",
		"41", "38", "2.95", "3.05",
		"p = 0.293",
		"not significant",
		"matches the paper",
		"+2.5%",
	} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestSplitScoreEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, total := range []float64{0, 4, 2.5, -0.5, 4.5} {
		qs := splitScore(rng, total)
		if len(qs) != Questions {
			t.Fatalf("total %v: %d scores", total, len(qs))
		}
		for _, q := range qs {
			if q < 0 || q > 1 {
				t.Fatalf("total %v: question score %v", total, q)
			}
		}
	}
	// Perfect score decomposes to all 1s.
	qs := splitScore(rng, MaxScore)
	for _, q := range qs {
		if !close(q, 1, 1e-9) {
			t.Fatalf("perfect score decomposition: %v", qs)
		}
	}
}

func TestQuestionMeansConsistentWithTotals(t *testing.T) {
	r, err := Run(2015)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []Cohort{r.Fall, r.Spring} {
		means := c.QuestionMeans()
		if len(means) != Questions {
			t.Fatalf("%s: %d question means", c.Name, len(means))
		}
		sum := 0.0
		for _, m := range means {
			if m < 0 || m > 1 {
				t.Fatalf("%s: question mean %v out of [0,1]", c.Name, m)
			}
			sum += m
		}
		// Sum of question means ≈ cohort mean (equality would need every
		// total inside [0,4]; standardization can push a few outside).
		if math.Abs(sum-c.Summary().Mean) > 0.1 {
			t.Fatalf("%s: question means sum %v vs cohort mean %v", c.Name, sum, c.Summary().Mean)
		}
	}
}

func TestQuestionMeansEmptyCohort(t *testing.T) {
	var c Cohort
	means := c.QuestionMeans()
	for _, m := range means {
		if m != 0 {
			t.Fatal("empty cohort should have zero means")
		}
	}
}

func TestQuestionTable(t *testing.T) {
	r, err := Run(2015)
	if err != nil {
		t.Fatal(err)
	}
	table := r.QuestionTable()
	for _, want := range []string{"question", "Fall", "Spring", "delta", "total/4"} {
		if !strings.Contains(table, want) {
			t.Fatalf("question table missing %q:\n%s", want, table)
		}
	}
}
