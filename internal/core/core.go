// Package core is the patternlet framework — the paper's primary
// contribution. A patternlet is a minimalist, scalable, syntactically
// correct program that demonstrates one parallel design pattern (§III).
// This package defines what a patternlet *is* in this reproduction:
//
//   - metadata: name, programming model, the design pattern(s) it teaches,
//     a synopsis, and the student exercise from the source file's header
//     comment;
//   - directives: the named "#pragma" lines that the classroom demo
//     toggles between commented-out and enabled — uncommenting a pragma in
//     the paper becomes enabling a named toggle here, preserving the
//     before/after contrast that drives the pedagogy;
//   - a Run function that executes the program with a given task count,
//     writing the same output the paper's figures show.
//
// The Registry holds the full collection (44 programs: 16 MPI, 17 OpenMP,
// 9 Pthreads, 2 heterogeneous — the composition reported in the
// abstract), which package collection populates.
package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/trace"
)

// Model identifies the parallel programming model a patternlet targets.
type Model string

// The four models in the paper's collection.
const (
	OpenMP   Model = "OpenMP"
	MPI      Model = "MPI"
	Pthreads Model = "Pthreads"
	Hybrid   Model = "MPI+OpenMP"
)

// suffix gives the registry key suffix for each model.
func (m Model) suffix() string {
	switch m {
	case OpenMP:
		return "omp"
	case MPI:
		return "mpi"
	case Pthreads:
		return "pthreads"
	case Hybrid:
		return "hybrid"
	}
	return "unknown"
}

// Layer is the catalog level of a pattern in the UIUC / Berkeley-Intel
// (OPL) hierarchies the paper cites in §II.B: architectural patterns at
// the top, algorithm-strategy patterns in the middle, implementation
// patterns at the bottom.
type Layer int

// The three layers.
const (
	ArchitecturalLayer Layer = iota
	AlgorithmLayer
	ImplementationLayer
)

// String names the layer.
func (l Layer) String() string {
	switch l {
	case ArchitecturalLayer:
		return "architectural"
	case AlgorithmLayer:
		return "algorithm-strategy"
	case ImplementationLayer:
		return "implementation"
	}
	return "unknown"
}

// Pattern is a named parallel design pattern.
type Pattern string

// The patterns the collection teaches, with the paper's own examples of
// each layer (§II.B names N-Body Problems and Monte Carlo as high level,
// Data/Task Decomposition as mid level, Barrier/Reduction/Message Passing
// as low level).
const (
	SPMD              Pattern = "SPMD"
	ForkJoin          Pattern = "Fork-Join"
	BarrierPattern    Pattern = "Barrier"
	ParallelLoop      Pattern = "Parallel Loop"
	Reduction         Pattern = "Reduction"
	MasterWorker      Pattern = "Master-Worker"
	MessagePassing    Pattern = "Message Passing"
	Broadcast         Pattern = "Broadcast"
	Scatter           Pattern = "Scatter"
	Gather            Pattern = "Gather"
	MutualExclusion   Pattern = "Mutual Exclusion"
	CriticalSection   Pattern = "Critical Section"
	AtomicUpdate      Pattern = "Atomic Update"
	DataDecomposition Pattern = "Data Decomposition"
	TaskDecomposition Pattern = "Task Decomposition"
	ProducerConsumer  Pattern = "Producer-Consumer"
	MonteCarlo        Pattern = "Monte Carlo"
	NBody             Pattern = "N-Body Problems"
)

// patternLayers places each pattern in the hierarchy.
var patternLayers = map[Pattern]Layer{
	MonteCarlo:        ArchitecturalLayer,
	NBody:             ArchitecturalLayer,
	DataDecomposition: AlgorithmLayer,
	TaskDecomposition: AlgorithmLayer,
	MasterWorker:      AlgorithmLayer,
	ProducerConsumer:  AlgorithmLayer,
	ParallelLoop:      AlgorithmLayer,
	SPMD:              ImplementationLayer,
	ForkJoin:          ImplementationLayer,
	BarrierPattern:    ImplementationLayer,
	Reduction:         ImplementationLayer,
	MessagePassing:    ImplementationLayer,
	Broadcast:         ImplementationLayer,
	Scatter:           ImplementationLayer,
	Gather:            ImplementationLayer,
	MutualExclusion:   ImplementationLayer,
	CriticalSection:   ImplementationLayer,
	AtomicUpdate:      ImplementationLayer,
}

// Layer returns the catalog layer of the pattern.
func (p Pattern) Layer() Layer {
	if l, ok := patternLayers[p]; ok {
		return l
	}
	return ImplementationLayer
}

// Patterns returns every cataloged pattern, sorted by name.
func Patterns() []Pattern {
	out := make([]Pattern, 0, len(patternLayers))
	for p := range patternLayers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Directive models one toggleable pragma/construct in a patternlet: the
// line the instructor uncomments live in class. Default is the state the
// source ships in (the paper's patternlets ship with the key directive
// commented out, so the "before" behaviour shows first).
type Directive struct {
	Name    string // toggle name, e.g. "barrier"
	Pragma  string // the C construct it models, e.g. "#pragma omp barrier"
	Default bool   // enabled state before any toggling
}

// Param declares one integer run parameter of a patternlet: a named
// problem-size knob (a sequence length, a band width, a block size) with
// a shipped default and a validated range. Parameters are to problem
// size what Directives are to program structure: declared up front,
// resolved against defaults, validated before a run starts, and folded
// into the run store's content address — so discovery (`patternlet
// list`, GET /patternlets) can expose every tunable size without anyone
// reading source, and `n=512` never shares a cache entry with `n=4096`.
type Param struct {
	Name    string // parameter name, e.g. "n"
	Doc     string // one-line description for discovery listings
	Default int    // value used when the caller does not set one
	Min     int    // smallest accepted value (inclusive)
	Max     int    // largest accepted value (inclusive)
}

// Patternlet is one program of the collection.
type Patternlet struct {
	Name         string // base name, e.g. "spmd" — Key() adds the model suffix
	Model        Model
	Patterns     []Pattern
	Synopsis     string      // one-line description
	Exercise     string      // the header-comment student exercise
	Directives   []Directive // toggleable constructs, if any
	Params       []Param     // declared run parameters, if any
	MinTasks     int         // smallest meaningful task count (default 1)
	DefaultTasks int         // task count used when the caller passes 0
	Run          func(rc *RunContext) error

	// Deterministic declares that the patternlet's captured Output is
	// byte-identical for a fixed (tasks, toggles, seed) — no scheduling-
	// dependent line interleaving, no wall-clock values in the output, no
	// unseeded randomness — under EVERY toggle combination, not just the
	// defaults. That guarantee is what makes a run content-addressable:
	// the serving layer's run store only caches patternlets tagged here,
	// and the collection's determinism test re-executes each tagged one
	// and pins byte-identity. Untagged (zero-value false) means "assume
	// timing-nondeterministic", the safe default for anything that lets
	// concurrent tasks race to the SafeWriter.
	Deterministic bool
}

// Key returns the registry key, e.g. "spmd.omp" or "barrier.mpi".
func (p *Patternlet) Key() string { return p.Name + "." + p.Model.suffix() }

// Validate checks the patternlet's metadata for registration.
func (p *Patternlet) Validate() error {
	switch {
	case p.Name == "":
		return errors.New("core: patternlet has no name")
	case p.Model == "":
		return fmt.Errorf("core: patternlet %q has no model", p.Name)
	case len(p.Patterns) == 0:
		return fmt.Errorf("core: patternlet %q teaches no patterns", p.Name)
	case p.Synopsis == "":
		return fmt.Errorf("core: patternlet %q has no synopsis", p.Name)
	case p.Exercise == "":
		return fmt.Errorf("core: patternlet %q has no exercise", p.Name)
	case p.Run == nil:
		return fmt.Errorf("core: patternlet %q has no Run function", p.Name)
	}
	seen := map[string]bool{}
	for _, d := range p.Directives {
		if d.Name == "" {
			return fmt.Errorf("core: patternlet %q has an unnamed directive", p.Name)
		}
		if seen[d.Name] {
			return fmt.Errorf("core: patternlet %q has duplicate directive %q", p.Name, d.Name)
		}
		seen[d.Name] = true
	}
	seenP := map[string]bool{}
	for _, pr := range p.Params {
		switch {
		case pr.Name == "":
			return fmt.Errorf("core: patternlet %q has an unnamed param", p.Name)
		case seenP[pr.Name]:
			return fmt.Errorf("core: patternlet %q has duplicate param %q", p.Name, pr.Name)
		case pr.Min > pr.Max:
			return fmt.Errorf("core: patternlet %q param %q has min %d > max %d", p.Name, pr.Name, pr.Min, pr.Max)
		case pr.Default < pr.Min || pr.Default > pr.Max:
			return fmt.Errorf("core: patternlet %q param %q default %d outside [%d, %d]",
				p.Name, pr.Name, pr.Default, pr.Min, pr.Max)
		}
		seenP[pr.Name] = true
	}
	return nil
}

// ValidateParams checks caller-supplied parameter overrides against the
// declared set: an unknown name or an out-of-range value is an error.
// Both Registry.Run and the HTTP layer's pre-admission validation apply
// exactly this check, so a bad request fails the same way everywhere.
func (p *Patternlet) ValidateParams(params map[string]int) error {
	for name, v := range params {
		decl, ok := p.param(name)
		if !ok {
			return fmt.Errorf("core: patternlet %q has no param %q", p.Key(), name)
		}
		if v < decl.Min || v > decl.Max {
			return fmt.Errorf("core: patternlet %q param %q = %d outside [%d, %d]",
				p.Key(), name, v, decl.Min, decl.Max)
		}
	}
	return nil
}

// ResolveTasks returns the task count a run requesting n would actually
// execute with: n itself, the patternlet's default when n is 0, and the
// paper's quad-core default when the patternlet declares none. This is
// the same resolution Registry.Run applies; the run store uses it so a
// request for "tasks":0 and an explicit request for the default count
// content-address to the same cache entry.
func (p *Patternlet) ResolveTasks(n int) int {
	if n == 0 {
		n = p.DefaultTasks
	}
	if n == 0 {
		n = 4
	}
	return n
}

// DirectiveState is one resolved toggle: the directive's name and the
// enabled state a run would observe for it.
type DirectiveState struct {
	Name    string
	Enabled bool
}

// EffectiveDirectives resolves what every declared directive evaluates
// to under the given overrides — the override when present, the shipped
// default otherwise — sorted by name. Two requests that spell the same
// effective configuration differently (one relying on a default, one
// setting it explicitly) resolve identically, which is what lets the run
// store's digest treat them as the same run.
func (p *Patternlet) EffectiveDirectives(toggles map[string]bool) []DirectiveState {
	out := make([]DirectiveState, 0, len(p.Directives))
	for _, d := range p.Directives {
		on := d.Default
		if v, ok := toggles[d.Name]; ok {
			on = v
		}
		out = append(out, DirectiveState{Name: d.Name, Enabled: on})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ParamState is one resolved run parameter: its name and the value a run
// would observe for it.
type ParamState struct {
	Name  string
	Value int
}

// EffectiveParams resolves what every declared parameter evaluates to
// under the given overrides — the override when present, the declared
// default otherwise — sorted by name. Like EffectiveDirectives, this is
// the resolution the run store hashes: a request relying on the default
// and one spelling it explicitly content-address to the same entry,
// while any genuinely different value gets its own digest.
func (p *Patternlet) EffectiveParams(params map[string]int) []ParamState {
	out := make([]ParamState, 0, len(p.Params))
	for _, decl := range p.Params {
		v := decl.Default
		if o, ok := params[decl.Name]; ok {
			v = o
		}
		out = append(out, ParamState{Name: decl.Name, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// param returns the parameter named name, if declared.
func (p *Patternlet) param(name string) (Param, bool) {
	for _, pr := range p.Params {
		if pr.Name == name {
			return pr, true
		}
	}
	return Param{}, false
}

// directive returns the directive named name, if declared.
func (p *Patternlet) directive(name string) (Directive, bool) {
	for _, d := range p.Directives {
		if d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// RunContext is everything a patternlet's Run receives.
type RunContext struct {
	W        *SafeWriter     // concurrent-safe output sink
	Ctx      context.Context // run-scoped cancellation; never nil under Registry.Run
	NumTasks int             // number of threads/processes (>= 1; Runner applies defaults)
	Toggles  map[string]bool
	Params   map[string]int  // overrides for declared run parameters
	Seed     int64           // caller-chosen PRNG seed; 0 = the shipped default (see BaseSeed)
	Trace    *trace.Recorder // optional; patternlets record phases when non-nil

	// MPI execution options, used by MPI and hybrid patternlets.
	UseTCP      bool
	Nodes       int           // simulated cluster nodes; 0 = one per process
	RecvTimeout time.Duration // deadlock detection bound; 0 = block forever
	Remote      *RemoteExec   // non-nil when this process hosts one rank of a multi-process world

	pl *Patternlet
}

// Context returns the run's cancellation context, Background when the
// RunContext was built by hand without one. Patternlet bodies pass it to
// the runtimes (omp.WithContext) so a caller-side timeout actually stops
// the running region.
func (rc *RunContext) Context() context.Context {
	if rc.Ctx == nil {
		return context.Background()
	}
	return rc.Ctx
}

// DefaultSeed seeds every patternlet PRNG when the caller does not choose
// one — the fixed value the randomized patternlets have always shipped
// with, so default runs stay reproducible (and cacheable) across
// processes.
const DefaultSeed = 42

// BaseSeed resolves the run's PRNG seed: the caller's RunOptions.Seed
// when set, DefaultSeed otherwise. Patternlets that use randomness must
// seed from here (never time or math/rand's global state) to keep a
// Deterministic tag honest.
func (rc *RunContext) BaseSeed() int64 {
	if rc.Seed != 0 {
		return rc.Seed
	}
	return DefaultSeed
}

// Enabled reports whether the named directive is on: the explicit toggle
// if the caller set one, the directive's shipped default otherwise.
// Asking about an undeclared directive is a programming error in the
// patternlet and panics, so the catalog tests catch it immediately.
func (rc *RunContext) Enabled(name string) bool {
	if v, ok := rc.Toggles[name]; ok {
		return v
	}
	if rc.pl != nil {
		if d, ok := rc.pl.directive(name); ok {
			return d.Default
		}
		panic(fmt.Sprintf("core: patternlet %q queried undeclared directive %q", rc.pl.Name, name))
	}
	return false
}

// Param returns the run's value for the named declared parameter: the
// explicit override if the caller set one, the declared default
// otherwise. Asking about an undeclared parameter is a programming error
// in the patternlet and panics, mirroring Enabled, so the catalog tests
// catch it immediately.
func (rc *RunContext) Param(name string) int {
	if v, ok := rc.Params[name]; ok {
		return v
	}
	if rc.pl != nil {
		if decl, ok := rc.pl.param(name); ok {
			return decl.Default
		}
		panic(fmt.Sprintf("core: patternlet %q queried undeclared param %q", rc.pl.Name, name))
	}
	return 0
}

// Record traces an event if tracing is active.
func (rc *RunContext) Record(task int, phase string, value int) {
	if rc.Trace != nil {
		rc.Trace.Record(task, phase, value)
	}
}

// SafeWriter serializes concurrent writes. Each Printf is one atomic
// write — the same guarantee a glibc printf of a short line gives the C
// patternlets, and what makes interleaved-but-uncorrupted output like
// Figure 8 possible.
//
// A SafeWriter built with NewCapture additionally runs in buffered
// capture mode: every write is appended to an internal buffer under the
// same lock that serializes the writes, so the captured transcript is
// byte-for-byte deterministic for single-threaded patternlets and
// line-stable (each Printf intact and uncorrupted, only the interleaving
// order varying) for multi-threaded ones. Registry.Run captures every
// run this way to fill Result.Output.
type SafeWriter struct {
	mu  sync.Mutex
	w   io.Writer     // live sink; may be nil in pure capture mode
	buf *bytes.Buffer // non-nil in capture mode
}

// NewSafeWriter wraps w for concurrent use.
func NewSafeWriter(w io.Writer) *SafeWriter {
	return &SafeWriter{w: w}
}

// NewCapture returns a SafeWriter in buffered capture mode. tee, when
// non-nil, additionally receives every write live (the CLI streams to
// stdout while the run is still captured for the Result).
func NewCapture(tee io.Writer) *SafeWriter {
	return &SafeWriter{w: tee, buf: &bytes.Buffer{}}
}

// Printf formats and writes atomically.
func (s *SafeWriter) Printf(format string, args ...any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.buf == nil {
		fmt.Fprintf(s.w, format, args...)
		return
	}
	start := s.buf.Len()
	fmt.Fprintf(s.buf, format, args...)
	if s.w != nil {
		s.w.Write(s.buf.Bytes()[start:])
	}
}

// Write implements io.Writer (whole-buffer atomic).
func (s *SafeWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.buf != nil {
		s.buf.Write(p)
		if s.w != nil {
			s.w.Write(p)
		}
		return len(p), nil
	}
	return s.w.Write(p)
}

// Captured returns everything written so far to a capture-mode writer,
// the empty string otherwise. Safe to call concurrently with writers,
// though the run harness only reads it after the run completes.
func (s *SafeWriter) Captured() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.buf == nil {
		return ""
	}
	return s.buf.String()
}
