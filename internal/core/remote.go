package core

import "repro/internal/cluster"

// RemoteExec tells an MPI patternlet that this process *is* one rank of a
// multi-OS-process world rather than the host of a whole in-process
// world: the launch package established the transport, and the patternlet
// should execute exactly this rank. See cmd/mpirun's -procs mode.
type RemoteExec struct {
	Rank      int
	NP        int
	Transport cluster.Transport
}
