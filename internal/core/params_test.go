package core

// The declared-parameter API: patternlets declare integer problem-size
// knobs (name, default, validated range) the same way they declare
// directive toggles, callers override them through RunOptions.Params,
// and every layer above — the CLI's -param flag, patternletd's
// "params":{...}, the run store's content address — resolves and
// validates them through exactly the methods tested here.

import (
	"context"
	"strings"
	"testing"
)

// paramlet builds a registrable patternlet with an "n" and a "block"
// param whose Run reports what it resolved.
func paramlet() *Patternlet {
	return &Patternlet{
		Name:     "sized",
		Model:    OpenMP,
		Patterns: []Pattern{DataDecomposition},
		Synopsis: "a parameterized patternlet",
		Exercise: "vary n",
		Params: []Param{
			{Name: "n", Doc: "problem size", Default: 256, Min: 16, Max: 4096},
			{Name: "block", Doc: "block size", Default: 64, Min: 8, Max: 1024},
		},
		Run: func(rc *RunContext) error {
			rc.W.Printf("n=%d block=%d\n", rc.Param("n"), rc.Param("block"))
			return nil
		},
	}
}

func TestValidateRejectsBadParamDeclarations(t *testing.T) {
	cases := []struct {
		name  string
		param Param
		want  string
	}{
		{"unnamed", Param{Default: 1, Min: 0, Max: 2}, "unnamed param"},
		{"inverted range", Param{Name: "n", Default: 1, Min: 5, Max: 2}, "min 5 > max 2"},
		{"default below min", Param{Name: "n", Default: 1, Min: 2, Max: 8}, "default 1 outside [2, 8]"},
		{"default above max", Param{Name: "n", Default: 9, Min: 2, Max: 8}, "default 9 outside [2, 8]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := paramlet()
			p.Params = []Param{tc.param}
			err := p.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestValidateRejectsDuplicateParam(t *testing.T) {
	p := paramlet()
	p.Params = append(p.Params, Param{Name: "n", Default: 1, Min: 1, Max: 2})
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), `duplicate param "n"`) {
		t.Fatalf("Validate() = %v, want duplicate param error", err)
	}
}

func TestValidateParams(t *testing.T) {
	p := paramlet()
	if err := p.ValidateParams(nil); err != nil {
		t.Fatalf("nil params: %v", err)
	}
	if err := p.ValidateParams(map[string]int{"n": 512, "block": 8}); err != nil {
		t.Fatalf("in-range params: %v", err)
	}
	if err := p.ValidateParams(map[string]int{"bogus": 1}); err == nil ||
		!strings.Contains(err.Error(), `no param "bogus"`) {
		t.Fatalf("unknown param: %v", err)
	}
	if err := p.ValidateParams(map[string]int{"n": 15}); err == nil ||
		!strings.Contains(err.Error(), `"n" = 15 outside [16, 4096]`) {
		t.Fatalf("below-min param: %v", err)
	}
	if err := p.ValidateParams(map[string]int{"n": 4097}); err == nil ||
		!strings.Contains(err.Error(), "outside") {
		t.Fatalf("above-max param: %v", err)
	}
}

// TestRunValidatesParams: the single execution path applies ValidateParams,
// so an unknown name or out-of-range value never reaches the Run body —
// the same contract toggles have.
func TestRunValidatesParams(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(paramlet())
	if _, err := r.Run(context.Background(), "sized.omp",
		RunOptions{Params: map[string]int{"bogus": 1}}); err == nil {
		t.Fatal("unknown param accepted by Run")
	}
	if _, err := r.Run(context.Background(), "sized.omp",
		RunOptions{Params: map[string]int{"n": 1 << 20}}); err == nil {
		t.Fatal("out-of-range param accepted by Run")
	}
}

// TestParamResolution: overrides win, defaults fill, and the values the
// Run body observes through rc.Param are the resolved ones.
func TestParamResolution(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(paramlet())

	res, err := r.Run(context.Background(), "sized.omp", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "n=256 block=64\n" {
		t.Fatalf("defaults: output %q", res.Output)
	}

	res, err = r.Run(context.Background(), "sized.omp",
		RunOptions{Params: map[string]int{"n": 1024}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "n=1024 block=64\n" {
		t.Fatalf("partial override: output %q", res.Output)
	}
}

func TestParamPanicsOnUndeclared(t *testing.T) {
	p := paramlet()
	p.Run = func(rc *RunContext) error {
		rc.Param("ghost")
		return nil
	}
	r := NewRegistry()
	r.MustRegister(p)
	defer func() {
		if recover() == nil {
			t.Fatal("querying an undeclared param did not panic")
		}
	}()
	r.Run(context.Background(), "sized.omp", RunOptions{})
}

// TestEffectiveParams pins the resolution + ordering contract the run
// store's digest relies on: defaults fill, overrides win, output sorted
// by name, and the two spellings of a default resolve identically.
func TestEffectiveParams(t *testing.T) {
	p := paramlet()
	got := p.EffectiveParams(map[string]int{"n": 512})
	want := []ParamState{{Name: "block", Value: 64}, {Name: "n", Value: 512}}
	if len(got) != len(want) {
		t.Fatalf("EffectiveParams = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EffectiveParams[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	explicit := p.EffectiveParams(map[string]int{"n": 256, "block": 64})
	implicit := p.EffectiveParams(nil)
	for i := range explicit {
		if explicit[i] != implicit[i] {
			t.Fatalf("explicit defaults %v != implicit defaults %v", explicit, implicit)
		}
	}
}

// TestFingerprintCoversParams: reshaping a patternlet's parameter table
// must change the catalog fingerprint, which is what invalidates every
// cached result when a default (and therefore a resolved digest
// preimage) changes meaning.
func TestFingerprintCoversParams(t *testing.T) {
	base := func() *Registry {
		r := NewRegistry()
		r.MustRegister(paramlet())
		return r
	}
	r1 := base()
	r2 := NewRegistry()
	p := paramlet()
	p.Params[0].Default = 512
	r2.MustRegister(p)
	if r1.Fingerprint() == r2.Fingerprint() {
		t.Fatal("changing a param default did not change the catalog fingerprint")
	}
	r3 := NewRegistry()
	q := paramlet()
	q.Params = q.Params[:1]
	r3.MustRegister(q)
	if r1.Fingerprint() == r3.Fingerprint() {
		t.Fatal("dropping a param did not change the catalog fingerprint")
	}
}
