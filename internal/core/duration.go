package core

import "time"

// durationFromNanos converts a nanosecond count to a Duration; separated
// for clarity at the RunOptions boundary, which is integer-typed so the
// options struct stays plain data.
func durationFromNanos(n int64) time.Duration { return time.Duration(n) }
