package core

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/trace"
)

// captureRun mirrors the old Capture helper on the single Run API: run
// and return the buffered output.
func captureRun(r *Registry, key string, opts RunOptions) (string, error) {
	res, err := r.Run(context.Background(), key, opts)
	return res.Output, err
}

func testPatternlet(name string, model Model) *Patternlet {
	return &Patternlet{
		Name:     name,
		Model:    model,
		Patterns: []Pattern{SPMD},
		Synopsis: "test synopsis",
		Exercise: "test exercise",
		Run: func(rc *RunContext) error {
			rc.W.Printf("ran %s with %d tasks\n", name, rc.NumTasks)
			return nil
		},
	}
}

func TestKeyUsesModelSuffix(t *testing.T) {
	cases := map[Model]string{
		OpenMP:   "x.omp",
		MPI:      "x.mpi",
		Pthreads: "x.pthreads",
		Hybrid:   "x.hybrid",
	}
	for model, want := range cases {
		p := testPatternlet("x", model)
		if p.Key() != want {
			t.Errorf("Key for %s = %q, want %q", model, p.Key(), want)
		}
	}
}

func TestValidateCatchesMissingFields(t *testing.T) {
	base := func() *Patternlet { return testPatternlet("v", OpenMP) }
	good := base()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid patternlet rejected: %v", err)
	}
	mutations := map[string]func(*Patternlet){
		"name":     func(p *Patternlet) { p.Name = "" },
		"model":    func(p *Patternlet) { p.Model = "" },
		"patterns": func(p *Patternlet) { p.Patterns = nil },
		"synopsis": func(p *Patternlet) { p.Synopsis = "" },
		"exercise": func(p *Patternlet) { p.Exercise = "" },
		"run":      func(p *Patternlet) { p.Run = nil },
	}
	for field, mutate := range mutations {
		p := base()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("missing %s not caught", field)
		}
	}
}

func TestValidateDirectives(t *testing.T) {
	p := testPatternlet("d", OpenMP)
	p.Directives = []Directive{{Name: "a"}, {Name: "a"}}
	if err := p.Validate(); err == nil {
		t.Fatal("duplicate directive accepted")
	}
	p.Directives = []Directive{{Name: ""}}
	if err := p.Validate(); err == nil {
		t.Fatal("unnamed directive accepted")
	}
}

func TestRegistryRegisterAndGet(t *testing.T) {
	r := NewRegistry()
	p := testPatternlet("a", OpenMP)
	if err := r.Register(p); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Get("a.omp")
	if !ok || got != p {
		t.Fatal("Get failed")
	}
	if _, ok := r.Get("missing.omp"); ok {
		t.Fatal("Get of missing key succeeded")
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(testPatternlet("a", OpenMP)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(testPatternlet("a", OpenMP)); err == nil {
		t.Fatal("duplicate key accepted")
	}
	// Same name, different model is fine.
	if err := r.Register(testPatternlet("a", MPI)); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryRejectsInvalid(t *testing.T) {
	r := NewRegistry()
	bad := testPatternlet("b", OpenMP)
	bad.Synopsis = ""
	if err := r.Register(bad); err == nil {
		t.Fatal("invalid patternlet accepted")
	}
}

func TestMustRegisterPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegister of invalid patternlet did not panic")
		}
	}()
	bad := testPatternlet("b", OpenMP)
	bad.Run = nil
	r.MustRegister(bad)
}

func TestAllSortedAndFilters(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(testPatternlet("zeta", OpenMP))
	r.MustRegister(testPatternlet("alpha", MPI))
	r.MustRegister(testPatternlet("alpha", OpenMP))
	all := r.All()
	if len(all) != 3 {
		t.Fatalf("All = %d entries", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Key() >= all[i].Key() {
			t.Fatal("All not sorted by key")
		}
	}
	if got := r.ByModel(OpenMP); len(got) != 2 {
		t.Fatalf("ByModel(OpenMP) = %d", len(got))
	}
	if got := r.ByPattern(SPMD); len(got) != 3 {
		t.Fatalf("ByPattern(SPMD) = %d", len(got))
	}
	if got := r.ByPattern(Gather); len(got) != 0 {
		t.Fatalf("ByPattern(Gather) = %d", len(got))
	}
	counts := r.Counts()
	if counts[OpenMP] != 2 || counts[MPI] != 1 {
		t.Fatalf("Counts = %v", counts)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRunAppliesDefaultTasks(t *testing.T) {
	r := NewRegistry()
	p := testPatternlet("deft", OpenMP)
	p.DefaultTasks = 6
	r.MustRegister(p)
	out, err := captureRun(r, "deft.omp", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "with 6 tasks") {
		t.Fatalf("output %q", out)
	}
	// Explicit count overrides the default.
	out, err = captureRun(r, "deft.omp", RunOptions{NumTasks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "with 2 tasks") {
		t.Fatalf("output %q", out)
	}
}

func TestRunFallsBackToQuadCoreDefault(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(testPatternlet("nodefault", OpenMP))
	out, err := captureRun(r, "nodefault.omp", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "with 4 tasks") {
		t.Fatalf("output %q", out)
	}
}

func TestRunEnforcesMinTasks(t *testing.T) {
	r := NewRegistry()
	p := testPatternlet("min", MPI)
	p.MinTasks = 2
	r.MustRegister(p)
	if _, err := captureRun(r, "min.mpi", RunOptions{NumTasks: 1}); err == nil {
		t.Fatal("below MinTasks accepted")
	}
	if _, err := captureRun(r, "min.mpi", RunOptions{NumTasks: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownKey(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Run(context.Background(), "nope.omp", RunOptions{}); err == nil {
		t.Fatal("unknown key accepted")
	}
}

func TestRunRejectsUnknownToggle(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(testPatternlet("t", OpenMP))
	_, err := captureRun(r, "t.omp", RunOptions{Toggles: map[string]bool{"bogus": true}})
	if err == nil {
		t.Fatal("unknown toggle accepted")
	}
}

func TestEnabledUsesDirectiveDefaultsAndOverrides(t *testing.T) {
	r := NewRegistry()
	var onDefault, offDefault bool
	p := &Patternlet{
		Name: "tog", Model: OpenMP, Patterns: []Pattern{SPMD},
		Synopsis: "s", Exercise: "e",
		Directives: []Directive{
			{Name: "shipsOn", Default: true},
			{Name: "shipsOff", Default: false},
		},
		Run: func(rc *RunContext) error {
			onDefault = rc.Enabled("shipsOn")
			offDefault = rc.Enabled("shipsOff")
			return nil
		},
	}
	r.MustRegister(p)
	if _, err := captureRun(r, "tog.omp", RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if !onDefault || offDefault {
		t.Fatalf("defaults: shipsOn=%v shipsOff=%v", onDefault, offDefault)
	}
	if _, err := captureRun(r, "tog.omp", RunOptions{Toggles: map[string]bool{"shipsOn": false, "shipsOff": true}}); err != nil {
		t.Fatal(err)
	}
	if onDefault || !offDefault {
		t.Fatalf("overrides: shipsOn=%v shipsOff=%v", onDefault, offDefault)
	}
}

func TestEnabledPanicsOnUndeclaredDirective(t *testing.T) {
	r := NewRegistry()
	p := testPatternlet("undeclared", OpenMP)
	p.Run = func(rc *RunContext) error {
		rc.Enabled("never-declared")
		return nil
	}
	r.MustRegister(p)
	defer func() {
		if recover() == nil {
			t.Fatal("undeclared directive query did not panic")
		}
	}()
	_, _ = captureRun(r, "undeclared.omp", RunOptions{})
}

func TestRecordIsOptional(t *testing.T) {
	rc := &RunContext{}
	rc.Record(0, "phase", 1) // must not panic with nil Trace
	rec := &trace.Recorder{}
	rc.Trace = rec
	rc.Record(0, "phase", 1)
	if rec.Len() != 1 {
		t.Fatal("Record did not reach the recorder")
	}
}

func TestLines(t *testing.T) {
	got := Lines("\n a \n\n b\n\t\nc\n")
	want := []string{"a", "b", "c"}
	if len(got) != 3 {
		t.Fatalf("Lines = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Lines = %v", got)
		}
	}
	if Lines("") != nil {
		t.Fatal("Lines of empty input should be nil")
	}
}

func TestSafeWriterConcurrentLinesUncorrupted(t *testing.T) {
	var buf bytes.Buffer
	w := NewSafeWriter(&buf)
	const workers, lines = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < lines; j++ {
				w.Printf("worker-%d-line\n", i)
			}
		}(i)
	}
	wg.Wait()
	out := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(out) != workers*lines {
		t.Fatalf("%d lines, want %d", len(out), workers*lines)
	}
	for _, l := range out {
		if !strings.HasPrefix(l, "worker-") || !strings.HasSuffix(l, "-line") {
			t.Fatalf("corrupted line %q", l)
		}
	}
}

func TestPatternLayers(t *testing.T) {
	cases := map[Pattern]Layer{
		MonteCarlo:         ArchitecturalLayer,
		NBody:              ArchitecturalLayer,
		DataDecomposition:  AlgorithmLayer,
		MasterWorker:       AlgorithmLayer,
		BarrierPattern:     ImplementationLayer,
		Reduction:          ImplementationLayer,
		MessagePassing:     ImplementationLayer,
		Pattern("unknown"): ImplementationLayer,
	}
	for p, want := range cases {
		if p.Layer() != want {
			t.Errorf("%s layer = %v, want %v", p, p.Layer(), want)
		}
	}
	for _, l := range []Layer{ArchitecturalLayer, AlgorithmLayer, ImplementationLayer} {
		if l.String() == "unknown" {
			t.Errorf("layer %d has no name", l)
		}
	}
	if Layer(99).String() != "unknown" {
		t.Error("invalid layer should stringify as unknown")
	}
}

func TestPatternsSortedAndComplete(t *testing.T) {
	ps := Patterns()
	if len(ps) < 15 {
		t.Fatalf("only %d cataloged patterns", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i-1] >= ps[i] {
			t.Fatal("Patterns not sorted")
		}
	}
}

func TestRunPropagatesTraceAndTasks(t *testing.T) {
	rec := &trace.Recorder{}
	r := NewRegistry()
	p := testPatternlet("tr", OpenMP)
	p.Run = func(rc *RunContext) error {
		rc.Record(rc.NumTasks, "seen", 0)
		return nil
	}
	r.MustRegister(p)
	res, err := r.Run(context.Background(), "tr.omp", RunOptions{NumTasks: 3, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	ev := rec.Events()
	if len(ev) != 1 || ev[0].Task != 3 {
		t.Fatalf("trace events %v", ev)
	}
	if len(res.Phases) != 1 || res.Phases[0].Task != 3 {
		t.Fatalf("Result.Phases %v", res.Phases)
	}
	if res.NumTasks != 3 {
		t.Fatalf("Result.NumTasks = %d, want 3", res.NumTasks)
	}
}
