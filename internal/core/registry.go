package core

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/trace"
)

// Registry is a catalog of patternlets keyed by "name.model".
type Registry struct {
	mu   sync.RWMutex
	pats map[string]*Patternlet
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{pats: map[string]*Patternlet{}}
}

// Register validates and adds a patternlet. Duplicate keys are rejected.
func (r *Registry) Register(p *Patternlet) error {
	if err := p.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := p.Key()
	if _, dup := r.pats[key]; dup {
		return fmt.Errorf("core: duplicate patternlet %q", key)
	}
	r.pats[key] = p
	return nil
}

// MustRegister is Register that panics on error; collection uses it at
// package init so a malformed catalog fails fast.
func (r *Registry) MustRegister(p *Patternlet) {
	if err := r.Register(p); err != nil {
		panic(err)
	}
}

// Get returns the patternlet with the given key ("name.model").
func (r *Registry) Get(key string) (*Patternlet, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.pats[key]
	return p, ok
}

// All returns every patternlet, sorted by key.
func (r *Registry) All() []*Patternlet {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Patternlet, 0, len(r.pats))
	for _, p := range r.pats {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// ByModel returns the patternlets for one model, sorted by name.
func (r *Registry) ByModel(m Model) []*Patternlet {
	var out []*Patternlet
	for _, p := range r.All() {
		if p.Model == m {
			out = append(out, p)
		}
	}
	return out
}

// ByPattern returns the patternlets that teach the given pattern.
func (r *Registry) ByPattern(pat Pattern) []*Patternlet {
	var out []*Patternlet
	for _, p := range r.All() {
		for _, q := range p.Patterns {
			if q == pat {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

// Counts returns the number of patternlets per model — the composition
// table from the paper's abstract (16 MPI, 17 OpenMP, 9 Pthreads, 2
// heterogeneous).
func (r *Registry) Counts() map[Model]int {
	out := map[Model]int{}
	for _, p := range r.All() {
		out[p.Model]++
	}
	return out
}

// Len returns the total number of registered patternlets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.pats)
}

// RunOptions configures one execution of a patternlet.
type RunOptions struct {
	NumTasks    int             // 0 = patternlet default
	Toggles     map[string]bool // overrides for declared directives
	Trace       *trace.Recorder
	UseTCP      bool
	Nodes       int
	RecvTimeout int64 // nanoseconds; 0 = block forever
	Remote      *RemoteExec
}

// Run executes the patternlet with the given options, writing to w.
func (r *Registry) Run(key string, w *SafeWriter, opts RunOptions) error {
	p, ok := r.Get(key)
	if !ok {
		return fmt.Errorf("core: no patternlet %q", key)
	}
	return RunPatternlet(p, w, opts)
}

// RunPatternlet executes one patternlet directly.
func RunPatternlet(p *Patternlet, w *SafeWriter, opts RunOptions) error {
	for name := range opts.Toggles {
		if _, ok := p.directive(name); !ok {
			return fmt.Errorf("core: patternlet %q has no directive %q", p.Key(), name)
		}
	}
	n := opts.NumTasks
	if n == 0 {
		n = p.DefaultTasks
	}
	if n == 0 {
		n = 4 // the paper's quad-core default
	}
	min := p.MinTasks
	if min == 0 {
		min = 1
	}
	if n < min {
		return fmt.Errorf("core: patternlet %q needs at least %d tasks, got %d", p.Key(), min, n)
	}
	rc := &RunContext{
		W:        w,
		NumTasks: n,
		Toggles:  opts.Toggles,
		Trace:    opts.Trace,
		UseTCP:   opts.UseTCP,
		Nodes:    opts.Nodes,
		Remote:   opts.Remote,
		pl:       p,
	}
	if opts.RecvTimeout > 0 {
		rc.RecvTimeout = durationFromNanos(opts.RecvTimeout)
	}
	return p.Run(rc)
}

// Capture runs the patternlet and returns everything it wrote, the common
// path for tests and the figures harness.
func (r *Registry) Capture(key string, opts RunOptions) (string, error) {
	var buf bytes.Buffer
	err := r.Run(key, NewSafeWriter(&buf), opts)
	return buf.String(), err
}

// Lines splits captured output into non-empty trimmed lines, a convenience
// for figure comparisons (the paper's figures show only the message
// lines).
func Lines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		l = strings.TrimSpace(l)
		if l != "" {
			out = append(out, l)
		}
	}
	return out
}
