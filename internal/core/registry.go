package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Registry is a catalog of patternlets keyed by "name.model".
type Registry struct {
	mu   sync.RWMutex
	pats map[string]*Patternlet
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{pats: map[string]*Patternlet{}}
}

// Register validates and adds a patternlet. Duplicate keys are rejected.
func (r *Registry) Register(p *Patternlet) error {
	if err := p.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := p.Key()
	if _, dup := r.pats[key]; dup {
		return fmt.Errorf("core: duplicate patternlet %q", key)
	}
	r.pats[key] = p
	return nil
}

// MustRegister is Register that panics on error; collection uses it at
// package init so a malformed catalog fails fast.
func (r *Registry) MustRegister(p *Patternlet) {
	if err := r.Register(p); err != nil {
		panic(err)
	}
}

// Get returns the patternlet with the given key ("name.model").
func (r *Registry) Get(key string) (*Patternlet, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.pats[key]
	return p, ok
}

// All returns every patternlet, sorted by key.
func (r *Registry) All() []*Patternlet {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Patternlet, 0, len(r.pats))
	for _, p := range r.pats {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// ByModel returns the patternlets for one model, sorted by name.
func (r *Registry) ByModel(m Model) []*Patternlet {
	var out []*Patternlet
	for _, p := range r.All() {
		if p.Model == m {
			out = append(out, p)
		}
	}
	return out
}

// ByPattern returns the patternlets that teach the given pattern.
func (r *Registry) ByPattern(pat Pattern) []*Patternlet {
	var out []*Patternlet
	for _, p := range r.All() {
		for _, q := range p.Patterns {
			if q == pat {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

// Counts returns the number of patternlets per model — the composition
// table from the paper's abstract (16 MPI, 17 OpenMP, 9 Pthreads, 2
// heterogeneous).
func (r *Registry) Counts() map[Model]int {
	out := map[Model]int{}
	for _, p := range r.All() {
		out[p.Model]++
	}
	return out
}

// Len returns the total number of registered patternlets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.pats)
}

// Fingerprint hashes the catalog's observable shape — every key, model,
// determinism tag, task defaults, and directive table in sorted key
// order — into a short hex string. The run store folds it into every
// content digest as the "catalog version": registering, removing, or
// reshaping a patternlet changes the fingerprint and therefore invalidates
// all cached results, without any manually-bumped version constant.
func (r *Registry) Fingerprint() string {
	h := fnv.New64a()
	for _, p := range r.All() {
		fmt.Fprintf(h, "%s|%s|det=%t|min=%d|def=%d", p.Key(), p.Model, p.Deterministic, p.MinTasks, p.DefaultTasks)
		for _, d := range p.Directives {
			fmt.Fprintf(h, "|%s=%t", d.Name, d.Default)
		}
		for _, pr := range p.Params {
			fmt.Fprintf(h, "|p:%s=%d[%d,%d]", pr.Name, pr.Default, pr.Min, pr.Max)
		}
		h.Write([]byte{'\n'})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// RunOptions configures one execution of a patternlet through
// Registry.Run — the single invocation path every front end (the
// patternlet CLI, mpirun's per-rank workers, benchjson's telemetry
// probe, and the patternletd HTTP service) goes through.
type RunOptions struct {
	NumTasks    int             // 0 = patternlet default
	Toggles     map[string]bool // overrides for declared directives
	Params      map[string]int  // overrides for declared run parameters (problem sizes)
	Seed        int64           // PRNG seed for randomized patternlets; 0 = core.DefaultSeed
	UseTCP      bool            // run MPI worlds over loopback TCP
	Nodes       int             // simulated cluster nodes; 0 = one per process
	RecvTimeout time.Duration   // MPI deadlock bound; 0 = the ctx deadline, else block forever
	Remote      *RemoteExec     // non-nil when this process hosts one rank of a multi-process world

	// Stream, when non-nil, receives the run's output live in addition
	// to the buffered capture that fills Result.Output — the CLI passes
	// stdout here so interactive runs still print as they go.
	Stream io.Writer

	// Trace, when non-nil, is a caller-owned phase recorder: the
	// patternlet's rc.Record calls land in it (and in Result.Phases)
	// without engaging the process-wide telemetry spine. Ignored when
	// Collect also instruments the run.
	Trace *trace.Recorder

	// Collect enables the telemetry spine for this run: Result.Events,
	// Result.Counters and Result.Phases are filled from a run-private
	// collector. Because the runtimes attach to one process-wide
	// collector, instrumented runs are serialized against all other
	// Registry.Run calls (a write lock on the spine); uninstrumented
	// runs share a read lock and execute concurrently.
	Collect bool
}

// Result is everything one execution produced.
type Result struct {
	Key      string        // registry key that ran
	NumTasks int           // resolved task count (after defaults)
	Elapsed  time.Duration // wall-clock duration of the Run body
	Output   string        // buffered SafeWriter capture (see NewCapture)

	// Phases holds the patternlet's own rc.Record events, when either a
	// caller recorder (RunOptions.Trace) or Collect was active.
	Phases []trace.Event

	// Events and Counters are the telemetry spine's view of the run,
	// filled only when RunOptions.Collect was set: every runtime span
	// and instant in stream order, and the final counter snapshot.
	// Render them with telemetry.Summarize or telemetry.WriteChromeTrace.
	Events   []telemetry.Event
	Counters map[string]int64
}

// teleGate serializes instrumented runs against every other run: the
// runtimes cache the process-wide telemetry collector per region/world,
// so two concurrent collectors — or an uninstrumented run executing
// while another run's collector is installed — would cross-contaminate
// streams. Collect takes the write side; plain runs share the read side
// and stay fully concurrent with each other.
var teleGate sync.RWMutex

// Run executes the patternlet with the given options under ctx and
// returns the captured Result. A ctx deadline or cancellation stops the
// run: context-aware runtimes (omp regions via WithContext) observe it
// within one scheduling poll, and MPI receives inherit the deadline as
// their RecvTimeout unless one was set explicitly. The partial Result is
// returned alongside the error.
func (r *Registry) Run(ctx context.Context, key string, opts RunOptions) (Result, error) {
	p, ok := r.Get(key)
	if !ok {
		return Result{Key: key}, fmt.Errorf("core: no patternlet %q", key)
	}
	return runPatternlet(ctx, p, opts)
}

// runPatternlet is the one execution path under Registry.Run.
func runPatternlet(ctx context.Context, p *Patternlet, opts RunOptions) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	res := Result{Key: p.Key()}
	for name := range opts.Toggles {
		if _, ok := p.directive(name); !ok {
			return res, fmt.Errorf("core: patternlet %q has no directive %q", p.Key(), name)
		}
	}
	if err := p.ValidateParams(opts.Params); err != nil {
		return res, err
	}
	n := p.ResolveTasks(opts.NumTasks)
	min := p.MinTasks
	if min == 0 {
		min = 1
	}
	if n < min {
		return res, fmt.Errorf("core: patternlet %q needs at least %d tasks, got %d", p.Key(), min, n)
	}
	res.NumTasks = n
	if err := ctx.Err(); err != nil {
		// A queued job whose client already gave up: don't start at all.
		return res, fmt.Errorf("core: run %q: %w", p.Key(), err)
	}
	recvTimeout := opts.RecvTimeout
	if recvTimeout == 0 {
		// MPI patternlets have no chunk boundaries to poll a context at;
		// bounding every blocking receive by the ctx deadline gives them
		// equivalent timeout semantics for free.
		if dl, ok := ctx.Deadline(); ok {
			recvTimeout = time.Until(dl)
			if recvTimeout <= 0 {
				recvTimeout = time.Nanosecond
			}
		}
	}
	w := NewCapture(opts.Stream)
	rc := &RunContext{
		W:           w,
		Ctx:         ctx,
		NumTasks:    n,
		Toggles:     opts.Toggles,
		Params:      opts.Params,
		Seed:        opts.Seed,
		Trace:       opts.Trace,
		UseTCP:      opts.UseTCP,
		Nodes:       opts.Nodes,
		RecvTimeout: recvTimeout,
		Remote:      opts.Remote,
		pl:          p,
	}

	var stream *telemetry.Stream
	var col *telemetry.Collector
	if opts.Collect {
		teleGate.Lock()
		defer teleGate.Unlock()
		stream = &telemetry.Stream{}
		col = telemetry.New(telemetry.WithSink(stream))
		telemetry.Enable(col)
		defer telemetry.Disable()
		if rc.Trace == nil {
			rc.Trace = trace.Attach(col, stream)
		}
	} else {
		teleGate.RLock()
		defer teleGate.RUnlock()
	}

	start := time.Now()
	err := p.Run(rc)
	res.Elapsed = time.Since(start)
	res.Output = w.Captured()
	if rc.Trace != nil {
		res.Phases = rc.Trace.Events()
	}
	if opts.Collect {
		res.Events = stream.Events()
		res.Counters = col.Counters().Snapshot()
	}
	if err != nil {
		return res, err
	}
	if cerr := ctx.Err(); cerr != nil {
		// The body unwound because the context fired (a cancelled omp
		// region returns no error of its own); surface the cause.
		return res, fmt.Errorf("core: run %q: %w", p.Key(), cerr)
	}
	return res, nil
}

// Lines splits captured output into non-empty trimmed lines, a convenience
// for figure comparisons (the paper's figures show only the message
// lines).
func Lines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		l = strings.TrimSpace(l)
		if l != "" {
			out = append(out, l)
		}
	}
	return out
}
