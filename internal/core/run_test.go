package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// The single Run entry point: ctx handling, the captured Result, and the
// SafeWriter capture mode that fills it.

func TestRunExpiredContextNeverStartsBody(t *testing.T) {
	r := NewRegistry()
	started := false
	p := testPatternlet("late", OpenMP)
	p.Run = func(rc *RunContext) error {
		started = true
		return nil
	}
	r.MustRegister(p)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.Run(ctx, "late.omp", RunOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if started {
		t.Fatal("body ran despite an already-cancelled context")
	}
}

func TestRunNilContextBehavesAsBackground(t *testing.T) {
	r := NewRegistry()
	p := testPatternlet("nilctx", OpenMP)
	p.Run = func(rc *RunContext) error {
		if rc.Ctx == nil {
			t.Error("rc.Ctx nil under Registry.Run")
		}
		if rc.Context().Done() != nil {
			t.Error("nil caller ctx should resolve to Background")
		}
		return nil
	}
	r.MustRegister(p)
	//lint:ignore SA1012 the nil-ctx fallback is exactly what this pins
	if _, err := r.Run(nil, "nilctx.omp", RunOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDeadlineBecomesRecvTimeout(t *testing.T) {
	r := NewRegistry()
	var got time.Duration
	p := testPatternlet("deadline", MPI)
	p.Run = func(rc *RunContext) error {
		got = rc.RecvTimeout
		return nil
	}
	r.MustRegister(p)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := r.Run(ctx, "deadline.mpi", RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if got <= 0 || got > time.Minute {
		t.Fatalf("RecvTimeout = %v, want in (0, 1m]", got)
	}
	// An explicit RecvTimeout wins over the deadline.
	if _, err := r.Run(ctx, "deadline.mpi", RunOptions{RecvTimeout: time.Second}); err != nil {
		t.Fatal(err)
	}
	if got != time.Second {
		t.Fatalf("explicit RecvTimeout = %v, want 1s", got)
	}
}

func TestRunContextFiredSurfacesError(t *testing.T) {
	r := NewRegistry()
	p := testPatternlet("fired", OpenMP)
	p.Run = func(rc *RunContext) error {
		rc.W.Printf("partial\n")
		<-rc.Context().Done()
		return nil // a cancelled omp region returns no error of its own
	}
	r.MustRegister(p)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	res, err := r.Run(ctx, "fired.omp", RunOptions{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if res.Output != "partial\n" {
		t.Fatalf("partial Result.Output = %q", res.Output)
	}
}

func TestRunStreamTeesLive(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(testPatternlet("tee", OpenMP))
	var live bytes.Buffer
	res, err := r.Run(context.Background(), "tee.omp", RunOptions{NumTasks: 2, Stream: &live})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output == "" || res.Output != live.String() {
		t.Fatalf("capture %q != live stream %q", res.Output, live.String())
	}
}

func TestRunCollectFillsTelemetry(t *testing.T) {
	r := NewRegistry()
	p := testPatternlet("tele", OpenMP)
	p.Run = func(rc *RunContext) error {
		rc.Record(0, "phase-a", 1)
		return nil
	}
	r.MustRegister(p)
	res, err := r.Run(context.Background(), "tele.omp", RunOptions{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 1 || res.Phases[0].Phase != "phase-a" {
		t.Fatalf("Phases = %v", res.Phases)
	}
	if len(res.Events) == 0 {
		t.Fatal("Collect produced no telemetry events")
	}
	if res.Counters == nil {
		t.Fatal("Collect produced no counter snapshot")
	}
	if res.Elapsed <= 0 {
		t.Fatalf("Elapsed = %v", res.Elapsed)
	}
}

// Concurrent runs must not cross-contaminate: plain runs share the
// telemetry gate, instrumented runs serialize, and each run's capture
// holds only its own output.
func TestRunConcurrentCapturesIsolated(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(testPatternlet("iso", OpenMP))
	const n = 16
	var wg sync.WaitGroup
	outs := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := RunOptions{NumTasks: 1 + i%4}
			opts.Collect = i%5 == 0
			res, err := r.Run(context.Background(), "iso.omp", opts)
			outs[i], errs[i] = res.Output, err
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		want := "ran iso with " + string(rune('0'+1+i%4)) + " tasks\n"
		if outs[i] != want {
			t.Fatalf("run %d output %q, want %q", i, outs[i], want)
		}
	}
}

// Satellite: the per-run buffered capture is byte-for-byte deterministic
// for single-threaded patternlets...
func TestCaptureDeterministicSingleThreaded(t *testing.T) {
	r := NewRegistry()
	p := testPatternlet("det", OpenMP)
	p.Run = func(rc *RunContext) error {
		for i := 0; i < 50; i++ {
			rc.W.Printf("line %02d of a single-threaded run\n", i)
		}
		return nil
	}
	r.MustRegister(p)
	first, err := captureRun(r, "det.omp", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		out, err := captureRun(r, "det.omp", RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if out != first {
			t.Fatalf("run %d differs:\n%q\nvs\n%q", i, out, first)
		}
	}
}

// ...and line-stable otherwise: each Printf lands intact, only the
// interleaving order varies.
func TestCaptureLineStableMultiThreaded(t *testing.T) {
	r := NewRegistry()
	p := testPatternlet("stable", OpenMP)
	p.Run = func(rc *RunContext) error {
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for j := 0; j < 100; j++ {
					rc.W.Printf("writer-%d-line-%d\n", w, j)
				}
			}(w)
		}
		wg.Wait()
		return nil
	}
	r.MustRegister(p)
	out, err := captureRun(r, "stable.omp", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 800 {
		t.Fatalf("%d lines captured, want 800", len(lines))
	}
	seen := map[string]bool{}
	for _, l := range lines {
		if !strings.HasPrefix(l, "writer-") || !strings.Contains(l, "-line-") {
			t.Fatalf("corrupted line %q", l)
		}
		if seen[l] {
			t.Fatalf("duplicated line %q", l)
		}
		seen[l] = true
	}
}

// The capture-mode writer tees every write to the live sink under the
// same lock, so the tee sees the same line-stable transcript.
func TestCaptureTeeMatchesBuffer(t *testing.T) {
	var tee bytes.Buffer
	w := NewCapture(&tee)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				w.Printf("t%d-%d\n", i, j)
			}
			w.Write([]byte("raw\n"))
		}(i)
	}
	wg.Wait()
	if w.Captured() != tee.String() {
		t.Fatalf("capture and tee diverged:\n%q\nvs\n%q", w.Captured(), tee.String())
	}
	if got := NewSafeWriter(&tee).Captured(); got != "" {
		t.Fatalf("non-capture writer Captured() = %q, want empty", got)
	}
}
