package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNewClusterNames(t *testing.T) {
	c := New(4)
	want := []string{"node-01", "node-02", "node-03", "node-04"}
	got := c.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if c.Size() != 4 {
		t.Fatalf("Size = %d", c.Size())
	}
}

func TestClusterClampsToOneNode(t *testing.T) {
	for _, n := range []int{0, -3} {
		c := New(n)
		if c.Size() != 1 || c.NodeFor(0).Name != "node-01" {
			t.Fatalf("New(%d) = %v", n, c.Names())
		}
	}
}

func TestNodeForRoundRobin(t *testing.T) {
	c := New(3)
	cases := map[int]string{0: "node-01", 1: "node-02", 2: "node-03", 3: "node-01", 7: "node-02"}
	for rank, want := range cases {
		if got := c.NodeFor(rank).Name; got != want {
			t.Errorf("NodeFor(%d) = %q, want %q", rank, got, want)
		}
	}
	if c.NodeFor(-1).Name != "node-01" {
		t.Error("negative rank should clamp to the first node")
	}
}

func TestTwoDigitNodeNamesPadded(t *testing.T) {
	c := New(12)
	if c.NodeFor(9).Name != "node-10" || c.NodeFor(0).Name != "node-01" {
		t.Fatalf("padding wrong: %v", c.Names())
	}
}

// transportCases runs a subtest against both transports.
func transportCases(t *testing.T, f func(t *testing.T, tr Transport)) {
	t.Helper()
	t.Run("chan", func(t *testing.T) {
		tr := NewChanTransport(4)
		defer tr.Close()
		f(t, tr)
	})
	t.Run("tcp", func(t *testing.T) {
		tr, err := NewTCPTransport(4)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		f(t, tr)
	})
}

var anyMsg = MatchAny()

func TestTransportSendRecv(t *testing.T) {
	transportCases(t, func(t *testing.T, tr Transport) {
		msg := Message{Src: 0, Tag: 7, Comm: 0, Payload: []byte("hello")}
		if err := tr.Send(2, msg); err != nil {
			t.Fatal(err)
		}
		got, err := tr.Recv(2, anyMsg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Src != 0 || got.Tag != 7 || string(got.Payload) != "hello" {
			t.Fatalf("got %+v", got)
		}
	})
}

// TestTransportNonOvertaking: messages from one sender with one tag arrive
// in send order.
func TestTransportNonOvertaking(t *testing.T) {
	transportCases(t, func(t *testing.T, tr Transport) {
		const n = 200
		for i := 0; i < n; i++ {
			if err := tr.Send(1, Message{Src: 0, Tag: 5, Payload: []byte{byte(i)}}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < n; i++ {
			m, err := tr.Recv(1, anyMsg)
			if err != nil {
				t.Fatal(err)
			}
			if m.Payload[0] != byte(i) {
				t.Fatalf("message %d arrived out of order (payload %d)", i, m.Payload[0])
			}
		}
	})
}

// TestTransportSelectiveMatch: a receive for tag B skips an earlier tag-A
// message, which a later receive still finds.
func TestTransportSelectiveMatch(t *testing.T) {
	transportCases(t, func(t *testing.T, tr Transport) {
		if err := tr.Send(1, Message{Src: 0, Tag: 1, Payload: []byte("A")}); err != nil {
			t.Fatal(err)
		}
		if err := tr.Send(1, Message{Src: 0, Tag: 2, Payload: []byte("B")}); err != nil {
			t.Fatal(err)
		}
		b, err := tr.Recv(1, Match{Comm: AnyComm, Src: AnySrc, Tag: 2})
		if err != nil || string(b.Payload) != "B" {
			t.Fatalf("tag-2 recv = (%v, %v)", b, err)
		}
		a, err := tr.Recv(1, Match{Comm: AnyComm, Src: AnySrc, Tag: 1})
		if err != nil || string(a.Payload) != "A" {
			t.Fatalf("tag-1 recv = (%v, %v)", a, err)
		}
	})
}

func TestTransportProbeLeavesMessage(t *testing.T) {
	transportCases(t, func(t *testing.T, tr Transport) {
		if err := tr.Send(3, Message{Src: 1, Tag: 9, Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
		p, err := tr.Probe(3, anyMsg)
		if err != nil || p.Tag != 9 {
			t.Fatalf("Probe = (%+v, %v)", p, err)
		}
		// The message must still be receivable.
		m, err := tr.Recv(3, anyMsg)
		if err != nil || string(m.Payload) != "x" {
			t.Fatalf("Recv after Probe = (%+v, %v)", m, err)
		}
	})
}

func TestTransportRecvTimeout(t *testing.T) {
	transportCases(t, func(t *testing.T, tr Transport) {
		start := time.Now()
		_, err := tr.RecvTimeout(0, anyMsg, int64(30*time.Millisecond))
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("err = %v, want ErrTimeout", err)
		}
		if time.Since(start) < 25*time.Millisecond {
			t.Fatal("timed out too early")
		}
	})
}

func TestTransportRecvBlocksUntilSend(t *testing.T) {
	transportCases(t, func(t *testing.T, tr Transport) {
		done := make(chan Message, 1)
		go func() {
			m, err := tr.Recv(1, anyMsg)
			if err == nil {
				done <- m
			}
		}()
		time.Sleep(10 * time.Millisecond)
		select {
		case <-done:
			t.Fatal("Recv returned before any Send")
		default:
		}
		if err := tr.Send(1, Message{Src: 0, Tag: 0, Payload: []byte("late")}); err != nil {
			t.Fatal(err)
		}
		select {
		case m := <-done:
			if string(m.Payload) != "late" {
				t.Fatalf("got %q", m.Payload)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("Recv never unblocked")
		}
	})
}

func TestTransportBadRank(t *testing.T) {
	transportCases(t, func(t *testing.T, tr Transport) {
		var re *RankError
		if err := tr.Send(99, Message{Src: 0}); !errors.As(err, &re) {
			t.Fatalf("Send(99) err = %v, want RankError", err)
		}
		if _, err := tr.Recv(-1, anyMsg); !errors.As(err, &re) {
			t.Fatalf("Recv(-1) err = %v, want RankError", err)
		}
		if _, err := tr.Probe(4, anyMsg); !errors.As(err, &re) {
			t.Fatalf("Probe(4) err = %v, want RankError", err)
		}
	})
}

func TestTransportCloseUnblocksReceivers(t *testing.T) {
	transportCases(t, func(t *testing.T, tr Transport) {
		errCh := make(chan error, 1)
		go func() {
			_, err := tr.Recv(0, anyMsg)
			errCh <- err
		}()
		time.Sleep(5 * time.Millisecond)
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-errCh:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("Recv after Close err = %v, want ErrClosed", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("receiver not unblocked by Close")
		}
	})
}

func TestChanTransportSendAfterCloseFails(t *testing.T) {
	tr := NewChanTransport(2)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(1, Message{Src: 0}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after Close err = %v, want ErrClosed", err)
	}
}

func TestChanTransportPending(t *testing.T) {
	tr := NewChanTransport(2)
	defer tr.Close()
	if tr.Pending(1) != 0 {
		t.Fatal("fresh mailbox not empty")
	}
	for i := 0; i < 3; i++ {
		if err := tr.Send(1, Message{Src: 0, Tag: i}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Pending(1) != 3 {
		t.Fatalf("Pending = %d, want 3", tr.Pending(1))
	}
	if tr.Pending(99) != 0 {
		t.Fatal("Pending for bad rank should be 0")
	}
}

func TestLatencyDecoratorDelaysSends(t *testing.T) {
	tr := NewLatency(NewChanTransport(2), 20*time.Millisecond)
	defer tr.Close()
	start := time.Now()
	if err := tr.Send(1, Message{Src: 0}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("latency not applied: send took %v", elapsed)
	}
}

// TestTransportManyToOneConcurrent: concurrent senders from all ranks are
// all delivered.
func TestTransportManyToOneConcurrent(t *testing.T) {
	transportCases(t, func(t *testing.T, tr Transport) {
		const perSender = 50
		var wg sync.WaitGroup
		for src := 0; src < 4; src++ {
			wg.Add(1)
			go func(src int) {
				defer wg.Done()
				for i := 0; i < perSender; i++ {
					if err := tr.Send(0, Message{Src: src, Tag: i, Payload: []byte{byte(src)}}); err != nil {
						t.Errorf("send: %v", err)
						return
					}
				}
			}(src)
		}
		wg.Wait()
		counts := map[byte]int{}
		for i := 0; i < 4*perSender; i++ {
			m, err := tr.Recv(0, anyMsg)
			if err != nil {
				t.Fatal(err)
			}
			counts[m.Payload[0]]++
		}
		for src := byte(0); src < 4; src++ {
			if counts[src] != perSender {
				t.Fatalf("src %d delivered %d messages, want %d", src, counts[src], perSender)
			}
		}
	})
}

func TestTCPTransportLargePayload(t *testing.T) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := tr.Send(1, Message{Src: 0, Tag: 1, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	m, err := tr.Recv(1, anyMsg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Payload) != len(payload) {
		t.Fatalf("payload length %d, want %d", len(m.Payload), len(payload))
	}
	for i := range payload {
		if m.Payload[i] != payload[i] {
			t.Fatalf("payload corrupted at byte %d", i)
		}
	}
}

func TestTCPTransportAddrs(t *testing.T) {
	tr, err := NewTCPTransport(3)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	addrs := tr.Addrs()
	if len(addrs) != 3 {
		t.Fatalf("Addrs = %v", addrs)
	}
	seen := map[string]bool{}
	for _, a := range addrs {
		if a == "" || seen[a] {
			t.Fatalf("bad or duplicate addr in %v", addrs)
		}
		seen[a] = true
	}
}

func TestTCPTransportDoubleCloseSafe(t *testing.T) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestTCPSelfSend(t *testing.T) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Send(0, Message{Src: 0, Tag: 4, Payload: []byte("self")}); err != nil {
		t.Fatal(err)
	}
	m, err := tr.Recv(0, anyMsg)
	if err != nil || string(m.Payload) != "self" {
		t.Fatalf("self-send = (%+v, %v)", m, err)
	}
}

func TestRankErrorMessage(t *testing.T) {
	err := errBadRank(9, 4)
	if err.Error() == "" {
		t.Fatal("empty error message")
	}
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 9 || re.Size != 4 {
		t.Fatalf("RankError fields wrong: %+v", re)
	}
}

func TestMessageFieldsSurviveTCPRoundTrip(t *testing.T) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	in := Message{Src: 1, Tag: -42, Comm: 17, Payload: []byte{1, 2, 3}}
	if err := tr.Send(0, in); err != nil {
		t.Fatal(err)
	}
	out, err := tr.Recv(0, anyMsg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Src != in.Src || out.Tag != in.Tag || out.Comm != in.Comm ||
		fmt.Sprint(out.Payload) != fmt.Sprint(in.Payload) {
		t.Fatalf("round trip changed message: %+v -> %+v", in, out)
	}
}
