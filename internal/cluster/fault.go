package cluster

import (
	"errors"
	"fmt"
	"sync"
)

// FaultInjector is the transport decorator with programmable failures,
// for testing how the layers above behave when the interconnect
// misbehaves — the failure-injection half of the test suite. It embeds
// the Middleware pass-through base and overrides only Send; receives,
// probes and shutdown flow through untouched. Faults are deterministic:
// they trigger on exact operation counts, so tests are reproducible.
type FaultInjector struct {
	Middleware

	mu        sync.Mutex
	sendCount int
	failSends map[int]error // 1-based send index -> error to inject
	dropSends map[int]bool  // 1-based send index -> silently drop
}

// ErrInjected is the default error returned by injected send failures.
var ErrInjected = errors.New("cluster: injected fault")

// NewFaultInjector wraps inner.
func NewFaultInjector(inner Transport) *FaultInjector {
	return &FaultInjector{
		Middleware: Middleware{Inner: inner},
		failSends:  map[int]error{},
		dropSends:  map[int]bool{},
	}
}

// FailSend arranges for the n-th Send (1-based, counted across all ranks)
// to return err instead of delivering. A nil err injects ErrInjected.
func (f *FaultInjector) FailSend(n int, err error) {
	if err == nil {
		err = ErrInjected
	}
	f.mu.Lock()
	f.failSends[n] = err
	f.mu.Unlock()
}

// DropSend arranges for the n-th Send to be silently lost — the message
// vanishes but the sender sees success, modeling a lossy link. (Real MPI
// guarantees reliable delivery, which is why a dropped message manifests
// as a hang — exactly what the deadlock detector then reports.)
func (f *FaultInjector) DropSend(n int) {
	f.mu.Lock()
	f.dropSends[n] = true
	f.mu.Unlock()
}

// SendCount reports how many sends have passed through so far.
func (f *FaultInjector) SendCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sendCount
}

// Send implements Transport with fault injection.
func (f *FaultInjector) Send(to int, m Message) error {
	f.mu.Lock()
	f.sendCount++
	n := f.sendCount
	if err, ok := f.failSends[n]; ok {
		f.mu.Unlock()
		return fmt.Errorf("send %d to rank %d: %w", n, to, err)
	}
	if f.dropSends[n] {
		f.mu.Unlock()
		return nil // swallowed
	}
	f.mu.Unlock()
	return f.Inner.Send(to, m)
}
