package cluster

import (
	"errors"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// The middleware layer: decorators must compose over any transport and
// stay transparent to traffic they don't alter.

func TestMiddlewarePassThrough(t *testing.T) {
	inner := NewChanTransport(2)
	mw := Middleware{Inner: inner}
	defer mw.Close()
	if err := mw.Send(1, Message{Src: 0, Tag: 7, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	m, err := mw.Recv(1, Match{Comm: AnyComm, Src: AnySrc, Tag: 7})
	if err != nil || string(m.Payload) != "x" {
		t.Fatalf("Recv = (%v, %v)", m, err)
	}
	if _, err := mw.RecvTimeout(1, MatchAny(),
		int64(10*time.Millisecond)); !errors.Is(err, ErrTimeout) {
		t.Fatalf("RecvTimeout on empty mailbox: %v", err)
	}
}

func TestLatencyDecoratorOverTCP(t *testing.T) {
	base, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewLatency(base, 20*time.Millisecond)
	defer tr.Close()
	start := time.Now()
	if err := tr.Send(1, Message{Src: 0, Tag: 1}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("latency not applied over TCP: send took %v", elapsed)
	}
	if _, err := tr.Recv(1, Match{Comm: AnyComm, Src: AnySrc, Tag: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestInstrumentedCountsTraffic(t *testing.T) {
	tr := NewInstrumented(NewChanTransport(3))
	defer tr.Close()
	payload := []byte{1, 2, 3, 4}
	// Two comms: 3 messages on comm 0 (two to rank 1, one to rank 2), one
	// on comm 9.
	for _, m := range []struct {
		to  int
		msg Message
	}{
		{1, Message{Src: 0, Tag: 1, Comm: 0, Payload: payload}},
		{1, Message{Src: 0, Tag: 2, Comm: 0, Payload: payload}},
		{2, Message{Src: 0, Tag: 3, Comm: 0, Payload: payload}},
		{1, Message{Src: 2, Tag: 4, Comm: 9, Payload: payload[:2]}},
	} {
		if err := tr.Send(m.to, m.msg); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := tr.Recv(1, MatchAny()); err != nil {
			t.Fatal(err)
		}
	}

	tot := tr.Totals()
	if tot.Sends != 4 || tot.BytesSent != 14 {
		t.Errorf("Totals sends/bytes = %d/%d, want 4/14", tot.Sends, tot.BytesSent)
	}
	if tot.Recvs != 3 || tot.BytesRecvd != 10 {
		t.Errorf("Totals recvs/bytes = %d/%d, want 3/10", tot.Recvs, tot.BytesRecvd)
	}
	if tot.PeerSends[1] != 3 || tot.PeerSends[2] != 1 {
		t.Errorf("PeerSends = %v", tot.PeerSends)
	}
	// Receives break down by source world rank: rank 1 drained two messages
	// from src 0 (comm 0) and one from src 2 (comm 9).
	if tot.PeerRecvs[0] != 2 || tot.PeerRecvs[2] != 1 {
		t.Errorf("PeerRecvs = %v", tot.PeerRecvs)
	}

	c0 := tr.CommStats(0)
	if c0.Sends != 3 || c0.BytesSent != 12 {
		t.Errorf("comm 0 sends/bytes = %d/%d, want 3/12", c0.Sends, c0.BytesSent)
	}
	c9 := tr.CommStats(9)
	if c9.Sends != 1 || c9.BytesSent != 2 || c9.PeerSends[1] != 1 || c9.PeerRecvs[2] != 1 {
		t.Errorf("comm 9 stats = %+v", c9)
	}
	unseen := tr.CommStats(42)
	if unseen.Sends != 0 || unseen.PeerSends == nil || unseen.PeerRecvs == nil {
		t.Errorf("unseen comm must report zeroes with every map initialized, got %+v", unseen)
	}
}

// FoldInto surfaces the transport totals in a telemetry collector's
// counter set under the "cluster."-prefixed names.
func TestInstrumentedFoldInto(t *testing.T) {
	tr := NewInstrumented(NewChanTransport(2))
	defer tr.Close()
	if err := tr.Send(1, Message{Src: 0, Payload: []byte{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Recv(1, MatchAny()); err != nil {
		t.Fatal(err)
	}
	col := telemetry.New()
	tr.FoldInto(col)
	snap := col.Counters().Snapshot()
	want := map[string]int64{
		"cluster.sends": 1, "cluster.recvs": 1,
		"cluster.bytes_sent": 3, "cluster.bytes_recvd": 3,
	}
	for name, v := range want {
		if snap[name] != v {
			t.Errorf("%s = %d, want %d", name, snap[name], v)
		}
	}
}

// Decorators stack: instrumentation over fault injection counts only the
// sends the injector let through.
func TestInstrumentedOverFaultInjector(t *testing.T) {
	fi := NewFaultInjector(NewChanTransport(2))
	fi.FailSend(2, nil)
	tr := NewInstrumented(fi)
	defer tr.Close()
	if err := tr.Send(1, Message{Src: 0, Payload: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(1, Message{Src: 0, Payload: []byte{2}}); !errors.Is(err, ErrInjected) {
		t.Fatalf("second send: %v", err)
	}
	if got := tr.Totals().Sends; got != 1 {
		t.Fatalf("instrumented counted %d sends, want 1 (failed send excluded)", got)
	}
	if fi.SendCount() != 2 {
		t.Fatalf("injector saw %d sends, want 2", fi.SendCount())
	}
}
