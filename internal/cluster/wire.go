package cluster

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/wirecodec"
)

// Transport frame format, shared by TCPTransport and RemoteTransport.
//
// Each message crosses a connection as one self-delimiting frame:
//
//	[4B LE frame length N] [1B meta length] [meta] [payload]
//
// where meta is zigzag varints (Dst, Src, Tag, Comm) and the payload is
// the remaining N-1-len(meta) bytes. The explicit meta length lets the
// reader slice the header without parsing ahead, and the length prefix
// lets any number of frames ride back-to-back in one write — which is
// exactly what the coalescing writer does. (The previous wire format was
// a per-connection gob stream: ~10× the header bytes, an allocation per
// frame on both ends, and no way to batch.)

// maxFrameLen bounds a single frame (1 GiB); a larger prefix means a
// corrupt or hostile stream and closes the connection.
const maxFrameLen = 1 << 30

// appendFrame appends the wire encoding of (dst, m) to b.
func appendFrame(b []byte, dst int, m Message) []byte {
	var meta [42]byte // 4 zigzag varints, ≤ 10 bytes each
	mb := meta[:0]
	mb = wirecodec.AppendVarint(mb, int64(dst))
	mb = wirecodec.AppendVarint(mb, int64(m.Src))
	mb = wirecodec.AppendVarint(mb, int64(m.Tag))
	mb = wirecodec.AppendVarint(mb, int64(m.Comm))
	frameLen := 1 + len(mb) + len(m.Payload)
	b = wirecodec.AppendUint32(b, uint32(frameLen))
	b = append(b, byte(len(mb)))
	b = append(b, mb...)
	return append(b, m.Payload...)
}

// readFrame reads one frame from r. The returned payload is a pooled
// buffer owned by the caller (ownership passes to the receiving rank,
// which recycles it after decoding).
func readFrame(r *bufio.Reader) (dst int, m Message, err error) {
	var hdr [5]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, Message{}, err
	}
	frameLen := int(uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24)
	metaLen := int(hdr[4])
	if frameLen < 1+metaLen || frameLen > maxFrameLen {
		return 0, Message{}, fmt.Errorf("cluster: bad frame length %d (meta %d)", frameLen, metaLen)
	}
	var meta [255]byte
	if _, err = io.ReadFull(r, meta[:metaLen]); err != nil {
		return 0, Message{}, err
	}
	mb := meta[:metaLen]
	fields := [4]int64{}
	for i := range fields {
		v, rest, ok := wirecodec.Varint(mb)
		if !ok {
			return 0, Message{}, fmt.Errorf("cluster: truncated frame meta")
		}
		fields[i], mb = v, rest
	}
	payloadLen := frameLen - 1 - metaLen
	payload := wirecodec.Get(payloadLen)[:payloadLen]
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, Message{}, err
	}
	m = Message{Src: int(fields[1]), Tag: int(fields[2]), Comm: int(fields[3]), Payload: payload}
	return int(fields[0]), m, nil
}

// Wire-level counter names, as they appear in WireStats maps (and, with
// the "cluster." prefix, in folded telemetry snapshots).
const (
	wireMisrouted      = "misrouted_frames"
	wireFlushImmediate = "flush_immediate"
	wireFlushBatched   = "flush_batched"
	wireCoalesced      = "frames_coalesced"
)

// wireCounters is the counter block a frame-based transport keeps for its
// wire-level decisions: frames discarded because their destination rank
// does not live here, and the immediate-vs-batched flush split.
type wireCounters struct {
	set            telemetry.CounterSet
	once           sync.Once
	misrouted      *telemetry.Counter
	flushImmediate *telemetry.Counter
	flushBatched   *telemetry.Counter
	coalesced      *telemetry.Counter
}

func (wc *wireCounters) init() {
	wc.once.Do(func() {
		wc.misrouted = wc.set.Counter(wireMisrouted)
		wc.flushImmediate = wc.set.Counter(wireFlushImmediate)
		wc.flushBatched = wc.set.Counter(wireFlushBatched)
		wc.coalesced = wc.set.Counter(wireCoalesced)
	})
}

func (wc *wireCounters) snapshot() map[string]int64 {
	wc.init()
	return wc.set.Snapshot()
}

// flushHighWater forces a flush of a coalescing connection once the
// staged batch reaches this size, regardless of the window timer — the
// window trades latency for fewer writes on *small* frames; a large
// frame already fills a write on its own.
const flushHighWater = 64 << 10

// maxInlineCopy is the largest payload the immediate-mode writer copies
// into its staging buffer for a single write; larger payloads go out as
// a vectored write (header iovec + payload iovec) so a multi-megabyte
// frame is never memcpy'd an extra time.
const maxInlineCopy = 32 << 10

// wireConn is one direction of a connection between two ranks: it frames
// messages onto the socket, either immediately (window 0) or through a
// coalescing buffer that batches every frame queued within the send
// window into a single write.
type wireConn struct {
	mu     sync.Mutex
	c      net.Conn
	window time.Duration
	wc     *wireCounters

	// Coalescing state (window > 0): staged holds encoded frames awaiting
	// the flush timer; stagedFrames counts them for the telemetry split.
	staged       []byte
	stagedFrames int
	timer        *time.Timer
	err          error // first write error; poisons the connection
}

// newWireConn wraps an established connection. The caller decides
// TCP_NODELAY (Nagle would add a kernel-side batching timer under ours;
// the transports default it on and expose WithNoDelay for comparisons).
func newWireConn(c net.Conn, window time.Duration, wc *wireCounters) *wireConn {
	wc.init()
	return &wireConn{c: c, window: window, wc: wc}
}

// send frames (dst, m) onto the connection, honoring the send window.
func (w *wireConn) send(dst int, m Message) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.window <= 0 {
		// Immediate mode: one frame, one write. The frame is staged in a
		// pooled buffer (header + payload copy) so small messages cost a
		// single syscall and no retained allocation; payloads too large to
		// pool ride out as a vectored write instead of being copied.
		if len(m.Payload) > maxInlineCopy {
			var hdr [64]byte
			h := appendFrameHeader(hdr[:0], dst, m)
			bufs := net.Buffers{h, m.Payload}
			_, err := bufs.WriteTo(w.c)
			if err != nil {
				w.err = err
				return err
			}
			w.wc.flushImmediate.Inc()
			return nil
		}
		buf := wirecodec.Get(4 + 1 + 42 + len(m.Payload))
		buf = appendFrame(buf, dst, m)
		_, err := w.c.Write(buf)
		wirecodec.Put(buf)
		if err != nil {
			w.err = err
			return err
		}
		w.wc.flushImmediate.Inc()
		return nil
	}

	// Coalescing mode: stage the frame; first frame in an empty batch
	// arms the window timer, and crossing the high-water mark flushes
	// without waiting for it.
	if w.staged == nil {
		w.staged = wirecodec.Get(flushHighWater)
	}
	w.staged = appendFrame(w.staged, dst, m)
	w.stagedFrames++
	if len(w.staged) >= flushHighWater {
		return w.flushLocked()
	}
	if w.timer == nil {
		w.timer = time.AfterFunc(w.window, w.flushOnTimer)
	}
	return nil
}

// appendFrameHeader appends only the length-prefix + meta portion of a
// frame for (dst, m) — the vectored-write path sends the payload as its
// own iovec.
func appendFrameHeader(b []byte, dst int, m Message) []byte {
	var meta [42]byte
	mb := meta[:0]
	mb = wirecodec.AppendVarint(mb, int64(dst))
	mb = wirecodec.AppendVarint(mb, int64(m.Src))
	mb = wirecodec.AppendVarint(mb, int64(m.Tag))
	mb = wirecodec.AppendVarint(mb, int64(m.Comm))
	b = wirecodec.AppendUint32(b, uint32(1+len(mb)+len(m.Payload)))
	b = append(b, byte(len(mb)))
	return append(b, mb...)
}

func (w *wireConn) flushOnTimer() {
	w.mu.Lock()
	defer w.mu.Unlock()
	_ = w.flushLocked()
}

// flushLocked writes the staged batch in one call and recycles the
// staging buffer. Callers hold w.mu.
func (w *wireConn) flushLocked() error {
	if w.timer != nil {
		w.timer.Stop()
		w.timer = nil
	}
	if w.err != nil || len(w.staged) == 0 {
		return w.err
	}
	_, err := w.c.Write(w.staged)
	w.wc.flushBatched.Inc()
	if w.stagedFrames > 1 {
		w.wc.coalesced.Add(int64(w.stagedFrames - 1))
	}
	wirecodec.Put(w.staged)
	w.staged = nil
	w.stagedFrames = 0
	if err != nil {
		w.err = err
	}
	return w.err
}

// close flushes anything staged and closes the socket.
func (w *wireConn) close() error {
	w.mu.Lock()
	_ = w.flushLocked()
	w.mu.Unlock()
	return w.c.Close()
}

// readFrames drains conn, delivering each frame addressed to ownRank into
// deliver and counting frames addressed elsewhere as misrouted. It
// returns when the connection errors or closes.
func readFrames(conn net.Conn, ownRank int, wc *wireCounters, deliver func(Message)) {
	wc.init()
	r := bufio.NewReaderSize(conn, 64<<10)
	for {
		dst, m, err := readFrame(r)
		if err != nil {
			_ = conn.Close()
			return
		}
		if dst != ownRank {
			// A frame for a rank this endpoint does not host: the sender's
			// routing table and ours disagree. Count it where operators can
			// see it (WireStats → Instrumented → telemetry) instead of
			// dropping it invisibly.
			wc.misrouted.Inc()
			wirecodec.Put(m.Payload)
			continue
		}
		deliver(m)
	}
}
