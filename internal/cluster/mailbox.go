package cluster

import (
	"sync"
	"time"
)

// mailbox is an ordered buffer of undelivered messages for one rank, with
// predicate-matched blocking receives. Messages are matched in arrival
// order, preserving MPI's non-overtaking rule for any fixed (source, tag,
// comm) triple.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m Message) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrClosed
	}
	mb.queue = append(mb.queue, m)
	mb.cond.Broadcast()
	return nil
}

// take removes and returns the earliest message satisfying match, blocking
// until one arrives. remove=false gives Probe semantics.
func (mb *mailbox) take(match func(Message) bool, remove bool, timeout time.Duration) (Message, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		// A timer wakes the waiter so the deadline is honored even when no
		// message ever arrives.
		t := time.AfterFunc(timeout, func() { mb.cond.Broadcast() })
		defer t.Stop()
	}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if mb.closed {
			return Message{}, ErrClosed
		}
		for i, m := range mb.queue {
			if match(m) {
				if remove {
					mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				}
				return m, nil
			}
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return Message{}, ErrTimeout
		}
		mb.cond.Wait()
	}
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// pending returns the number of buffered messages (for tests and the
// deadlock diagnostics in the MPI layer).
func (mb *mailbox) pending() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.queue)
}

// ChanTransport is the in-process transport: one mailbox per rank, sends
// deliver directly. To model interconnect cost, wrap it in the Latency
// decorator — synthetic delay is middleware, not a transport special
// case.
type ChanTransport struct {
	boxes []*mailbox
}

// NewChanTransport creates an in-process transport for np ranks.
func NewChanTransport(np int) *ChanTransport {
	t := &ChanTransport{boxes: make([]*mailbox, np)}
	for i := range t.boxes {
		t.boxes[i] = newMailbox()
	}
	return t
}

// Send implements Transport.
func (t *ChanTransport) Send(to int, m Message) error {
	if to < 0 || to >= len(t.boxes) {
		return errBadRank(to, len(t.boxes))
	}
	return t.boxes[to].put(m)
}

// Recv implements Transport.
func (t *ChanTransport) Recv(rank int, match func(Message) bool) (Message, error) {
	if rank < 0 || rank >= len(t.boxes) {
		return Message{}, errBadRank(rank, len(t.boxes))
	}
	return t.boxes[rank].take(match, true, 0)
}

// RecvTimeout implements Transport.
func (t *ChanTransport) RecvTimeout(rank int, match func(Message) bool, timeoutNanos int64) (Message, error) {
	if rank < 0 || rank >= len(t.boxes) {
		return Message{}, errBadRank(rank, len(t.boxes))
	}
	return t.boxes[rank].take(match, true, time.Duration(timeoutNanos))
}

// Probe implements Transport.
func (t *ChanTransport) Probe(rank int, match func(Message) bool) (Message, error) {
	if rank < 0 || rank >= len(t.boxes) {
		return Message{}, errBadRank(rank, len(t.boxes))
	}
	return t.boxes[rank].take(match, false, 0)
}

// Close implements Transport.
func (t *ChanTransport) Close() error {
	for _, b := range t.boxes {
		b.close()
	}
	return nil
}

// Pending returns the number of undelivered messages buffered for rank.
func (t *ChanTransport) Pending(rank int) int {
	if rank < 0 || rank >= len(t.boxes) {
		return 0
	}
	return t.boxes[rank].pending()
}

func errBadRank(r, np int) error {
	return &RankError{Rank: r, Size: np}
}

// RankError reports an out-of-range rank passed to a transport.
type RankError struct {
	Rank, Size int
}

func (e *RankError) Error() string {
	return "cluster: rank out of range"
}
