package cluster

import (
	"runtime"
	"sync"
	"time"
)

// maxMailboxSpin caps the cooperative-yield probes a receiver makes
// before parking on the condition variable. A message that is already in
// flight on an in-process transport (the ping-pong and collective-
// exchange shapes) usually lands within a few scheduler yields, so
// spinning skips the park/unpark round trip entirely. The budget is
// adaptive per mailbox: a spin that finds its message restores the full
// budget, a spin that falls through to parking halves it. Over a wire
// transport, where delivery takes a syscall round trip no amount of
// yielding can hide, the budget collapses to zero within a few receives
// and the mailbox parks immediately — spinning there would only steal
// CPU from the very read loop that delivers the message.
const maxMailboxSpin = 64

// mailbox is an ordered buffer of undelivered messages for one rank, with
// match-selected blocking receives. Messages are matched in arrival
// order, preserving MPI's non-overtaking rule for any fixed (source, tag,
// comm) triple.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	// queue[head:] are the undelivered messages. Deliveries overwhelmingly
	// match at the front (FIFO traffic), so take bumps head instead of
	// shifting the slice — a coalesced batch of thousands of frames drains
	// in linear time — and put resets to the start of the backing array
	// whenever the queue empties, so steady-state traffic reuses one array
	// with no allocation.
	queue   []Message
	head    int
	closed  bool
	spin    int // current spin budget (see maxMailboxSpin)
	waiters int // receivers parked on cond; put skips the wake when zero
}

func newMailbox() *mailbox {
	mb := &mailbox{spin: maxMailboxSpin}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m Message) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrClosed
	}
	if mb.head > 0 && mb.head == len(mb.queue) {
		mb.queue = mb.queue[:0]
		mb.head = 0
	}
	mb.queue = append(mb.queue, m)
	if mb.waiters > 0 {
		mb.cond.Broadcast()
	}
	return nil
}

// findLocked returns the queue index of the earliest message matching mt,
// or -1. Callers hold mb.mu.
func (mb *mailbox) findLocked(mt Match) int {
	for i := mb.head; i < len(mb.queue); i++ {
		if mt.Matches(mb.queue[i]) {
			return i
		}
	}
	return -1
}

// takeLocked removes and returns the message at index i (an absolute
// index from findLocked). The head case — by far the common one under
// FIFO traffic — is a head bump, not a memmove; see the queue field docs.
func (mb *mailbox) takeLocked(i int, remove bool) Message {
	m := mb.queue[i]
	if remove {
		if i == mb.head {
			mb.queue[i] = Message{} // drop the payload reference
			mb.head++
		} else {
			mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
		}
	}
	return m
}

// take removes and returns the earliest message satisfying mt, blocking
// until one arrives. remove=false gives Probe semantics.
//
// The wait is two-phase: a bounded adaptive spin of scheduler yields
// first (the fast path for messages already in flight), then the
// condition-variable loop. The spin matters on the small-message latency
// path — it removes the futex wake from a ping-pong round trip — and the
// adaptive budget keeps it from burning CPU on transports where delivery
// is never spin-fast (see maxMailboxSpin).
func (mb *mailbox) take(mt Match, remove bool, timeout time.Duration) (Message, error) {
	mb.mu.Lock()
	if mb.closed {
		mb.mu.Unlock()
		return Message{}, ErrClosed
	}
	if i := mb.findLocked(mt); i >= 0 {
		m := mb.takeLocked(i, remove)
		mb.mu.Unlock()
		return m, nil
	}
	budget := mb.spin
	mb.mu.Unlock()

	for spin := 0; spin < budget; spin++ {
		runtime.Gosched()
		mb.mu.Lock()
		if mb.closed {
			mb.mu.Unlock()
			return Message{}, ErrClosed
		}
		if i := mb.findLocked(mt); i >= 0 {
			mb.spin = maxMailboxSpin // spinning paid off; keep doing it
			m := mb.takeLocked(i, remove)
			mb.mu.Unlock()
			return m, nil
		}
		mb.mu.Unlock()
	}

	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		// A timer wakes the waiter so the deadline is honored even when no
		// message ever arrives.
		t := time.AfterFunc(timeout, func() { mb.cond.Broadcast() })
		defer t.Stop()
	}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	// Falling through to a park means this mailbox's messages don't arrive
	// spin-fast; halve the budget so repeated misses converge on parking
	// almost immediately. The floor of one probe costs a single yield —
	// noise next to any wait long enough to park for — and is what lets a
	// later spin hit restore the full budget.
	mb.spin = budget / 2
	if mb.spin < 1 {
		mb.spin = 1
	}
	for {
		if mb.closed {
			return Message{}, ErrClosed
		}
		if i := mb.findLocked(mt); i >= 0 {
			return mb.takeLocked(i, remove), nil
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return Message{}, ErrTimeout
		}
		mb.waiters++
		mb.cond.Wait()
		mb.waiters--
	}
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// pending returns the number of buffered messages (for tests and the
// deadlock diagnostics in the MPI layer).
func (mb *mailbox) pending() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.queue) - mb.head
}

// ChanTransport is the in-process transport: one mailbox per rank, sends
// deliver directly. To model interconnect cost, wrap it in the Latency
// decorator — synthetic delay is middleware, not a transport special
// case.
type ChanTransport struct {
	boxes []*mailbox
}

// NewChanTransport creates an in-process transport for np ranks.
func NewChanTransport(np int) *ChanTransport {
	t := &ChanTransport{boxes: make([]*mailbox, np)}
	for i := range t.boxes {
		t.boxes[i] = newMailbox()
	}
	return t
}

// Send implements Transport. The mailbox retains m.Payload until the
// receiver takes it, so ChanTransport does not implement PayloadCopier's
// copy semantics: sender-side buffers are recycled by the receiving rank.
func (t *ChanTransport) Send(to int, m Message) error {
	if to < 0 || to >= len(t.boxes) {
		return errBadRank(to, len(t.boxes))
	}
	return t.boxes[to].put(m)
}

// Recv implements Transport.
func (t *ChanTransport) Recv(rank int, mt Match) (Message, error) {
	if rank < 0 || rank >= len(t.boxes) {
		return Message{}, errBadRank(rank, len(t.boxes))
	}
	return t.boxes[rank].take(mt, true, 0)
}

// RecvTimeout implements Transport.
func (t *ChanTransport) RecvTimeout(rank int, mt Match, timeoutNanos int64) (Message, error) {
	if rank < 0 || rank >= len(t.boxes) {
		return Message{}, errBadRank(rank, len(t.boxes))
	}
	return t.boxes[rank].take(mt, true, time.Duration(timeoutNanos))
}

// Probe implements Transport.
func (t *ChanTransport) Probe(rank int, mt Match) (Message, error) {
	if rank < 0 || rank >= len(t.boxes) {
		return Message{}, errBadRank(rank, len(t.boxes))
	}
	return t.boxes[rank].take(mt, false, 0)
}

// Close implements Transport.
func (t *ChanTransport) Close() error {
	for _, b := range t.boxes {
		b.close()
	}
	return nil
}

// Pending returns the number of undelivered messages buffered for rank.
func (t *ChanTransport) Pending(rank int) int {
	if rank < 0 || rank >= len(t.boxes) {
		return 0
	}
	return t.boxes[rank].pending()
}

func errBadRank(r, np int) error {
	return &RankError{Rank: r, Size: np}
}

// RankError reports an out-of-range rank passed to a transport.
type RankError struct {
	Rank, Size int
}

func (e *RankError) Error() string {
	return "cluster: rank out of range"
}
