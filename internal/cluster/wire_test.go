package cluster

import (
	"bufio"
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestFrameRoundTrip(t *testing.T) {
	msgs := []struct {
		dst int
		m   Message
	}{
		{1, Message{Src: 0, Tag: 7, Comm: 0, Payload: []byte("hello")}},
		{0, Message{Src: 3, Tag: -2, Comm: 12345678, Payload: nil}}, // internal collective tag
		{5, Message{Src: 2, Tag: 0, Comm: -1, Payload: make([]byte, 70000)}},
	}
	var wire []byte
	for _, x := range msgs {
		wire = appendFrame(wire, x.dst, x.m)
	}
	r := bufio.NewReader(bytes.NewReader(wire))
	for i, x := range msgs {
		dst, m, err := readFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if dst != x.dst || m.Src != x.m.Src || m.Tag != x.m.Tag || m.Comm != x.m.Comm {
			t.Fatalf("frame %d: got (dst=%d src=%d tag=%d comm=%d), want (%d %d %d %d)",
				i, dst, m.Src, m.Tag, m.Comm, x.dst, x.m.Src, x.m.Tag, x.m.Comm)
		}
		if !bytes.Equal(m.Payload, x.m.Payload) {
			t.Fatalf("frame %d: payload mismatch (%d vs %d bytes)", i, len(m.Payload), len(x.m.Payload))
		}
	}
	if _, _, err := readFrame(r); err == nil {
		t.Fatal("expected EOF after last frame")
	}
}

func TestFrameHeaderMatchesFrame(t *testing.T) {
	// The vectored-write path emits header and payload as separate iovecs;
	// their concatenation must be byte-identical to the single-buffer frame.
	m := Message{Src: 4, Tag: 9, Comm: 2, Payload: []byte("vectored payload")}
	whole := appendFrame(nil, 3, m)
	hdr := appendFrameHeader(nil, 3, m)
	if !bytes.Equal(whole, append(hdr, m.Payload...)) {
		t.Fatal("appendFrameHeader + payload != appendFrame")
	}
}

func TestReadFrameRejectsBadLength(t *testing.T) {
	// frameLen smaller than 1+metaLen is structurally impossible on a
	// healthy stream; the reader must error instead of mis-slicing.
	bad := []byte{2, 0, 0, 0, 10} // frameLen=2, metaLen=10
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(bad))); err == nil {
		t.Fatal("accepted frameLen < 1+metaLen")
	}
	huge := []byte{0xff, 0xff, 0xff, 0xff, 1} // ~4 GiB > maxFrameLen
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(huge))); err == nil {
		t.Fatal("accepted frame above maxFrameLen")
	}
}

func TestTCPOptionDefaultsAndOverrides(t *testing.T) {
	cfg := defaultTCPConfig()
	if cfg.dialTimeout != 5*time.Second || !cfg.noDelay || cfg.batchWindow != 0 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	for _, o := range []TCPOption{
		WithDialTimeout(123 * time.Millisecond),
		WithBatchWindow(time.Millisecond),
		WithNoDelay(false),
	} {
		o(&cfg)
	}
	if cfg.dialTimeout != 123*time.Millisecond || cfg.batchWindow != time.Millisecond || cfg.noDelay {
		t.Fatalf("options not applied: %+v", cfg)
	}
}

func TestTCPImmediateFlushCounters(t *testing.T) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	const n = 4
	for i := 0; i < n; i++ {
		if err := tr.Send(1, Message{Src: 0, Tag: i, Comm: 0, Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := tr.Recv(1, Match{Comm: 0, Src: 0, Tag: i}); err != nil {
			t.Fatal(err)
		}
	}
	st := tr.WireStats()
	if st[wireFlushImmediate] != n {
		t.Fatalf("flush_immediate = %d, want %d (stats: %v)", st[wireFlushImmediate], n, st)
	}
	if st[wireFlushBatched] != 0 || st[wireCoalesced] != 0 {
		t.Fatalf("immediate mode must not batch: %v", st)
	}
}

func TestTCPCoalescing(t *testing.T) {
	tr, err := NewTCPTransport(2, WithBatchWindow(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// All sends land well inside one 5ms window, so they must ride a
	// single batched write.
	const n = 8
	for i := 0; i < n; i++ {
		if err := tr.Send(1, Message{Src: 0, Tag: i, Comm: 0, Payload: []byte("tick")}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := tr.Recv(1, Match{Comm: 0, Src: 0, Tag: i}); err != nil {
			t.Fatal(err)
		}
	}
	st := tr.WireStats()
	if st[wireFlushBatched] == 0 {
		t.Fatalf("expected batched flushes, got %v", st)
	}
	if st[wireCoalesced] == 0 {
		t.Fatalf("expected coalesced frames, got %v", st)
	}
	if st[wireFlushImmediate] != 0 {
		t.Fatalf("coalescing mode must not flush immediately: %v", st)
	}
	// Non-overtaking must survive batching: total frames = batched flush
	// batches + coalesced extras must cover all n sends.
	if got := st[wireCoalesced] + st[wireFlushBatched]; got != n {
		t.Fatalf("frames accounted = %d, want %d (stats %v)", got, n, st)
	}
}

func TestMisroutedFramesCounted(t *testing.T) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	inst := NewInstrumented(tr)

	// Hand-write a frame addressed to a rank this endpoint does not host,
	// followed by a well-routed one, on a raw connection to rank 1's
	// listener. The read loop processes them in order, so once the valid
	// message is delivered the misrouted frame has been counted.
	conn, err := net.Dial("tcp", tr.Addrs()[1])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var wire []byte
	wire = appendFrame(wire, 7, Message{Src: 0, Tag: 1, Comm: 0, Payload: []byte("lost")})
	wire = appendFrame(wire, 1, Message{Src: 0, Tag: 2, Comm: 0, Payload: []byte("found")})
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	m, err := inst.Recv(1, Match{Comm: 0, Src: 0, Tag: 2})
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Payload) != "found" {
		t.Fatalf("payload = %q", m.Payload)
	}

	if got := tr.WireStats()[wireMisrouted]; got != 1 {
		t.Fatalf("misrouted_frames = %d, want 1", got)
	}
	// The count must surface through the instrumentation stack, not just
	// the raw transport: Totals().Wire and the folded telemetry names.
	if got := inst.Totals().Wire[wireMisrouted]; got != 1 {
		t.Fatalf("Totals().Wire[misrouted_frames] = %d, want 1", got)
	}
	col := telemetry.New()
	inst.FoldInto(col)
	if got := col.Counter("cluster." + wireMisrouted).Load(); got != 1 {
		t.Fatalf("folded cluster.misrouted_frames = %d, want 1", got)
	}
}

func TestMiddlewarePromotesWireInterfaces(t *testing.T) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// Stacked middleware (Latency over Instrumented) must still report the
	// base transport's copy semantics and wire counters.
	stack := NewLatency(NewInstrumented(tr), 0)
	if !SendCopiesPayload(stack) {
		t.Fatal("SendCopiesPayload not promoted through middleware stack")
	}
	if WireStats(stack) == nil {
		t.Fatal("WireStats not promoted through middleware stack")
	}
	ch := NewChanTransport(2)
	defer ch.Close()
	if SendCopiesPayload(ch) {
		t.Fatal("ChanTransport must not report copy-on-send")
	}
	if WireStats(ch) != nil {
		t.Fatal("ChanTransport has no wire counters")
	}
}
