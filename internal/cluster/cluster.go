// Package cluster simulates the Beowulf cluster the paper runs its MPI
// patternlets on: a set of named nodes (node-01, node-02, …), a placement
// of ranked processes onto those nodes, and a wire transport that carries
// tagged messages between ranks.
//
// Two transports are provided. ChanTransport delivers through in-process
// mailboxes and is the default. TCPTransport carries every message over a
// real loopback TCP connection as length-prefixed binary frames (see
// wire.go), so the message-passing patternlets exercise an actual network
// path (the distributed-memory column of the paper's §I.A taxonomy). Both
// present the same Transport interface, and the MPI layer is oblivious to
// which one is underneath.
package cluster

import (
	"errors"
	"fmt"
	"math"
)

// Message is the unit carried by a Transport. Payloads are opaque bytes:
// the typed MPI layer above serializes values into Payload (the compact
// wire codec with a gob fallback), which is also what enforces MPI's
// no-shared-memory model — only bytes ever cross between ranks, never
// pointers into another rank's heap.
//
// Payload buffer ownership transfers with the message: once a Message is
// handed to Send, the payload belongs to the transport and, after
// delivery, to the receiving rank — the sender must not reuse or recycle
// it. This is what lets the layer above return received payload buffers
// to the wirecodec pool after decoding without a reference count.
type Message struct {
	Src     int    // sending world rank
	Tag     int    // user tags are >= 0; negative tags are reserved for collectives
	Comm    int    // communicator id, so split communicators have isolated tag spaces
	Payload []byte // wire-encoded value
}

// ErrClosed is returned by transport operations after Close.
var ErrClosed = errors.New("cluster: transport closed")

// ErrTimeout is returned by MatchRecv when the supplied deadline expires
// before a matching message arrives. The MPI layer maps it to its
// deadlock-detection error.
var ErrTimeout = errors.New("cluster: receive timed out")

// Wildcard values for Match fields. Communicator ids and ranks are always
// non-negative, so -1 is free to mean "any"; tags use the whole negative
// range for internal collective traffic, so the tag sentinels sit at the
// far end of the int range where no real tag can ever land.
const (
	// AnyComm matches messages on every communicator.
	AnyComm = -1
	// AnySrc matches messages from every sender.
	AnySrc = -1
	// AnyTag matches every tag, including the negative tags reserved for
	// collective traffic.
	AnyTag = math.MinInt
	// AnyUserTag matches every non-negative tag — the wildcard the MPI
	// layer uses so MPI_ANY_TAG can never swallow internal collective
	// frames.
	AnyUserTag = math.MinInt + 1
)

// Match selects messages in a mailbox by (communicator, source, tag).
// It is a plain value — receives pass it by copy, so the hot receive
// path allocates nothing and transports can evaluate it without an
// indirect call. (It replaced a func(Message) bool predicate; every
// matching rule the runtime ever used is expressible as this triple.)
type Match struct {
	Comm int // communicator id, or AnyComm
	Src  int // sending world rank, or AnySrc
	Tag  int // exact tag, AnyTag, or AnyUserTag
}

// MatchAny matches every message — what tests and drain loops want.
func MatchAny() Match { return Match{Comm: AnyComm, Src: AnySrc, Tag: AnyTag} }

// Matches reports whether m satisfies the selector.
func (mt Match) Matches(m Message) bool {
	if mt.Comm != AnyComm && m.Comm != mt.Comm {
		return false
	}
	if mt.Src != AnySrc && m.Src != mt.Src {
		return false
	}
	switch mt.Tag {
	case AnyTag:
		return true
	case AnyUserTag:
		return m.Tag >= 0
	default:
		return m.Tag == mt.Tag
	}
}

// Transport moves messages between world ranks.
type Transport interface {
	// Send delivers m to the destination rank's mailbox. It may block for
	// flow control but must not wait for a matching receive (i.e. it has
	// MPI buffered-send semantics, like eager-protocol MPI_Send).
	// Ownership of m.Payload passes to the transport.
	Send(to int, m Message) error
	// Recv blocks until a message matching mt is available for the given
	// rank and removes it from the mailbox. Matching is in arrival order:
	// the earliest buffered match wins, which preserves MPI's
	// non-overtaking guarantee per (source, tag, comm).
	Recv(rank int, mt Match) (Message, error)
	// RecvTimeout is Recv with a deadline in nanoseconds (0 = no deadline).
	RecvTimeout(rank int, mt Match, timeoutNanos int64) (Message, error)
	// Probe blocks like Recv but leaves the message in the mailbox,
	// returning a copy (MPI_Probe).
	Probe(rank int, mt Match) (Message, error)
	// Close releases transport resources. All blocked operations return
	// ErrClosed.
	Close() error
}

// PayloadCopier is the optional interface a transport implements when its
// Send serializes the payload onto a wire (or into a private staging
// buffer) before returning, instead of retaining the caller's slice. When
// a transport reports true, the sender may recycle the payload buffer the
// moment Send returns; when false (or when the interface is absent), the
// payload is referenced until the receiving rank consumes it.
type PayloadCopier interface {
	SendCopiesPayload() bool
}

// SendCopiesPayload probes t (through any middleware chain) for the
// PayloadCopier contract, defaulting to false — the conservative answer
// that keeps buffers alive until delivery.
func SendCopiesPayload(t Transport) bool {
	if p, ok := t.(PayloadCopier); ok {
		return p.SendCopiesPayload()
	}
	return false
}

// WireStatser is the optional interface a transport implements to expose
// internal wire-level counters (misrouted frames, flush decisions, frames
// coalesced). The Instrumented middleware folds these into its snapshots
// so they surface next to the traffic counters instead of vanishing
// inside the transport.
type WireStatser interface {
	WireStats() map[string]int64
}

// WireStats probes t for wire-level counters, returning nil when the
// transport keeps none.
func WireStats(t Transport) map[string]int64 {
	if ws, ok := t.(WireStatser); ok {
		return ws.WireStats()
	}
	return nil
}

// Node is one machine of the simulated cluster.
type Node struct {
	Name string // e.g. "node-01"
}

// Cluster is a set of named nodes with a round-robin placement of world
// ranks onto them.
type Cluster struct {
	nodes []Node
}

// New creates a cluster of n nodes named node-01 … node-NN, matching the
// host names in Figures 5 and 6 of the paper. n below 1 is clamped to 1.
func New(n int) *Cluster {
	if n < 1 {
		n = 1
	}
	c := &Cluster{nodes: make([]Node, n)}
	for i := range c.nodes {
		c.nodes[i] = Node{Name: fmt.Sprintf("node-%02d", i+1)}
	}
	return c
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// NodeFor returns the node hosting the given world rank under round-robin
// placement, the scheme mpirun uses by default across a machinefile.
func (c *Cluster) NodeFor(rank int) Node {
	if rank < 0 {
		rank = 0
	}
	return c.nodes[rank%len(c.nodes)]
}

// Names returns the node names in order.
func (c *Cluster) Names() []string {
	out := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.Name
	}
	return out
}
