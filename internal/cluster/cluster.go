// Package cluster simulates the Beowulf cluster the paper runs its MPI
// patternlets on: a set of named nodes (node-01, node-02, …), a placement
// of ranked processes onto those nodes, and a wire transport that carries
// tagged messages between ranks.
//
// Two transports are provided. ChanTransport delivers through in-process
// mailboxes and is the default. TCPTransport carries every message over a
// real loopback TCP connection with length-prefixed gob frames, so the
// message-passing patternlets exercise an actual network path (the
// distributed-memory column of the paper's §I.A taxonomy). Both present
// the same Transport interface, and the MPI layer is oblivious to which
// one is underneath.
package cluster

import (
	"errors"
	"fmt"
)

// Message is the unit carried by a Transport. Payloads are opaque bytes:
// the typed MPI layer above gob-encodes values into Payload, which is also
// what enforces MPI's no-shared-memory model — only bytes ever cross
// between ranks, never pointers into another rank's heap.
type Message struct {
	Src     int    // sending world rank
	Tag     int    // user tags are >= 0; negative tags are reserved for collectives
	Comm    int    // communicator id, so split communicators have isolated tag spaces
	Payload []byte // gob-encoded value
}

// ErrClosed is returned by transport operations after Close.
var ErrClosed = errors.New("cluster: transport closed")

// ErrTimeout is returned by MatchRecv when the supplied deadline expires
// before a matching message arrives. The MPI layer maps it to its
// deadlock-detection error.
var ErrTimeout = errors.New("cluster: receive timed out")

// Transport moves messages between world ranks.
type Transport interface {
	// Send delivers m to the destination rank's mailbox. It may block for
	// flow control but must not wait for a matching receive (i.e. it has
	// MPI buffered-send semantics, like eager-protocol MPI_Send).
	Send(to int, m Message) error
	// Recv blocks until a message matching the predicate is available for
	// the given rank and removes it from the mailbox. Matching is in
	// arrival order: the earliest buffered match wins, which preserves
	// MPI's non-overtaking guarantee per (source, tag, comm).
	Recv(rank int, match func(Message) bool) (Message, error)
	// RecvTimeout is Recv with a deadline in nanoseconds (0 = no deadline).
	RecvTimeout(rank int, match func(Message) bool, timeoutNanos int64) (Message, error)
	// Probe blocks like Recv but leaves the message in the mailbox,
	// returning a copy (MPI_Probe).
	Probe(rank int, match func(Message) bool) (Message, error)
	// Close releases transport resources. All blocked operations return
	// ErrClosed.
	Close() error
}

// Node is one machine of the simulated cluster.
type Node struct {
	Name string // e.g. "node-01"
}

// Cluster is a set of named nodes with a round-robin placement of world
// ranks onto them.
type Cluster struct {
	nodes []Node
}

// New creates a cluster of n nodes named node-01 … node-NN, matching the
// host names in Figures 5 and 6 of the paper. n below 1 is clamped to 1.
func New(n int) *Cluster {
	if n < 1 {
		n = 1
	}
	c := &Cluster{nodes: make([]Node, n)}
	for i := range c.nodes {
		c.nodes[i] = Node{Name: fmt.Sprintf("node-%02d", i+1)}
	}
	return c
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// NodeFor returns the node hosting the given world rank under round-robin
// placement, the scheme mpirun uses by default across a machinefile.
func (c *Cluster) NodeFor(rank int) Node {
	if rank < 0 {
		rank = 0
	}
	return c.nodes[rank%len(c.nodes)]
}

// Names returns the node names in order.
func (c *Cluster) Names() []string {
	out := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.Name
	}
	return out
}
