package cluster

import "time"

// Transport middleware: composable decorators over any Transport.
//
// The message-passing stack treats the wire as a layered pipeline. At the
// bottom sits a base transport (ChanTransport, TCPTransport or
// RemoteTransport); above it, any number of decorators can be stacked,
// each adding one orthogonal concern — synthetic latency, traffic
// accounting, fault injection — without the base transports or the MPI
// layer knowing. Every decorator embeds Middleware, which forwards all
// five Transport methods to the wrapped Inner transport, so a decorator
// overrides only the operations it cares about.

// Middleware is the embeddable pass-through base for transport
// decorators. On its own it is a transparent wrapper; decorators embed it
// and override individual methods:
//
//	type Logging struct{ cluster.Middleware }
//	func (l *Logging) Send(to int, m cluster.Message) error {
//	    log.Printf("-> %d tag %d", to, m.Tag)
//	    return l.Inner.Send(to, m)
//	}
type Middleware struct {
	Inner Transport
}

// Send implements Transport by forwarding to Inner.
func (w Middleware) Send(to int, m Message) error { return w.Inner.Send(to, m) }

// Recv implements Transport by forwarding to Inner.
func (w Middleware) Recv(rank int, mt Match) (Message, error) {
	return w.Inner.Recv(rank, mt)
}

// RecvTimeout implements Transport by forwarding to Inner.
func (w Middleware) RecvTimeout(rank int, mt Match, timeoutNanos int64) (Message, error) {
	return w.Inner.RecvTimeout(rank, mt, timeoutNanos)
}

// Probe implements Transport by forwarding to Inner.
func (w Middleware) Probe(rank int, mt Match) (Message, error) {
	return w.Inner.Probe(rank, mt)
}

// Close implements Transport by forwarding to Inner.
func (w Middleware) Close() error { return w.Inner.Close() }

// SendCopiesPayload implements PayloadCopier by probing the wrapped
// transport, so the payload-ownership contract survives any decorator
// stack (a Latency-wrapped TCPTransport still copies on Send).
func (w Middleware) SendCopiesPayload() bool { return SendCopiesPayload(w.Inner) }

// WireStats implements WireStatser by probing the wrapped transport, so
// wire-level counters surface through decorator stacks.
func (w Middleware) WireStats() map[string]int64 { return WireStats(w.Inner) }

var _ Transport = Middleware{}
var _ PayloadCopier = Middleware{}
var _ WireStatser = Middleware{}

// Latency delays every Send by a fixed one-way duration, modeling the
// interconnect cost of a distributed-memory system. It works over any
// transport — in-process channels, loopback TCP, or the multi-process
// remote transport — replacing the latency model that used to be wired
// into ChanTransport alone. The sleep happens in the sending goroutine
// before the message is handed down, so concurrent senders overlap their
// delays exactly as independent wire transfers would.
type Latency struct {
	Middleware
	d time.Duration
}

// NewLatency wraps inner with a synthetic per-message one-way delay.
func NewLatency(inner Transport, d time.Duration) *Latency {
	return &Latency{Middleware: Middleware{Inner: inner}, d: d}
}

// Send implements Transport: sleep the configured delay, then forward.
func (l *Latency) Send(to int, m Message) error {
	if l.d > 0 {
		time.Sleep(l.d)
	}
	return l.Inner.Send(to, m)
}
