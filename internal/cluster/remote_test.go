package cluster

import (
	"errors"
	"net"
	"sync"
	"testing"
)

// newRemoteWorld builds np RemoteTransports sharing an address table, each
// playing one rank. In production each lives in its own OS process; the
// transport cannot tell the difference, since all traffic crosses TCP.
func newRemoteWorld(t *testing.T, np int) []*RemoteTransport {
	t.Helper()
	listeners := make([]net.Listener, np)
	addrs := make([]string, np)
	for i := 0; i < np; i++ {
		ln, err := ListenLoopback()
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	trs := make([]*RemoteTransport, np)
	for i := 0; i < np; i++ {
		tr, err := NewRemoteTransport(i, np, addrs, listeners[i])
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
	}
	t.Cleanup(func() {
		for _, tr := range trs {
			_ = tr.Close()
		}
	})
	return trs
}

func TestRemoteTransportSendRecv(t *testing.T) {
	trs := newRemoteWorld(t, 3)
	if err := trs[0].Send(2, Message{Src: 0, Tag: 5, Payload: []byte("over the wire")}); err != nil {
		t.Fatal(err)
	}
	m, err := trs[2].Recv(2, anyMsg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Src != 0 || m.Tag != 5 || string(m.Payload) != "over the wire" {
		t.Fatalf("got %+v", m)
	}
}

func TestRemoteTransportSelfSendStaysLocal(t *testing.T) {
	trs := newRemoteWorld(t, 2)
	if err := trs[1].Send(1, Message{Src: 1, Tag: 0, Payload: []byte("self")}); err != nil {
		t.Fatal(err)
	}
	m, err := trs[1].Recv(1, anyMsg)
	if err != nil || string(m.Payload) != "self" {
		t.Fatalf("self-send: (%+v, %v)", m, err)
	}
}

func TestRemoteTransportRejectsForeignRankRecv(t *testing.T) {
	trs := newRemoteWorld(t, 2)
	if _, err := trs[0].Recv(1, anyMsg); err == nil {
		t.Fatal("receiving for a rank this process does not host succeeded")
	}
	if _, err := trs[0].Probe(1, anyMsg); err == nil {
		t.Fatal("probing a foreign rank succeeded")
	}
}

func TestRemoteTransportValidation(t *testing.T) {
	ln, err := ListenLoopback()
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := NewRemoteTransport(5, 2, []string{"a", "b"}, ln); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, err := NewRemoteTransport(0, 2, []string{"a"}, ln); err == nil {
		t.Fatal("short address table accepted")
	}
}

func TestRemoteTransportBadDestination(t *testing.T) {
	trs := newRemoteWorld(t, 2)
	var re *RankError
	if err := trs[0].Send(7, Message{Src: 0}); !errors.As(err, &re) {
		t.Fatalf("Send(7) err = %v", err)
	}
}

func TestRemoteTransportNonOvertaking(t *testing.T) {
	trs := newRemoteWorld(t, 2)
	const n = 100
	for i := 0; i < n; i++ {
		if err := trs[0].Send(1, Message{Src: 0, Tag: 1, Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		m, err := trs[1].Recv(1, anyMsg)
		if err != nil {
			t.Fatal(err)
		}
		if m.Payload[0] != byte(i) {
			t.Fatalf("message %d overtaken (got %d)", i, m.Payload[0])
		}
	}
}

func TestRemoteTransportConcurrentAllToOne(t *testing.T) {
	const np, per = 4, 30
	trs := newRemoteWorld(t, np)
	var wg sync.WaitGroup
	for src := 1; src < np; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := trs[src].Send(0, Message{Src: src, Tag: i}); err != nil {
					t.Errorf("send from %d: %v", src, err)
					return
				}
			}
		}(src)
	}
	wg.Wait()
	counts := map[int]int{}
	for i := 0; i < (np-1)*per; i++ {
		m, err := trs[0].Recv(0, anyMsg)
		if err != nil {
			t.Fatal(err)
		}
		counts[m.Src]++
	}
	for src := 1; src < np; src++ {
		if counts[src] != per {
			t.Fatalf("src %d: %d messages", src, counts[src])
		}
	}
}

func TestRemoteTransportCloseUnblocks(t *testing.T) {
	trs := newRemoteWorld(t, 2)
	errCh := make(chan error, 1)
	go func() {
		_, err := trs[0].Recv(0, anyMsg)
		errCh <- err
	}()
	_ = trs[0].Close()
	if err := <-errCh; !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := trs[0].Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestRemoteTransportAccessors(t *testing.T) {
	trs := newRemoteWorld(t, 2)
	if trs[1].Rank() != 1 {
		t.Fatalf("Rank = %d", trs[1].Rank())
	}
	if len(trs[0].Addrs()) != 2 {
		t.Fatalf("Addrs = %v", trs[0].Addrs())
	}
}

// Close must serialize with an in-flight dial: dial holds connMu for the
// whole TCP connect, so a concurrent Close either waits out the dial and
// closes the fresh conn, or wins and makes the dial observe closure.
// Hammer lazy-dialing Sends against Close under the race detector, then
// pin the post-Close invariant: a dial to a peer that was never connected
// reports ErrClosed instead of opening a new socket on a dead transport.
func TestRemoteTransportCloseWhileDialing(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		trs := newRemoteWorld(t, 4)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				// Ranks 1 and 2 get dialed during the race; rank 3 never is.
				to := 1 + g%2
				_ = trs[0].Send(to, Message{Src: 0, Tag: g, Payload: []byte("racing close")})
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_ = trs[0].Close()
		}()
		close(start)
		wg.Wait()

		if err := trs[0].Send(3, Message{Src: 0, Tag: 99}); !errors.Is(err, ErrClosed) {
			t.Fatalf("iter %d: send after close to undialed rank: err = %v, want ErrClosed", iter, err)
		}
	}
}
