package cluster

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCPTransport carries messages over loopback TCP sockets with gob-encoded
// frames: one listener per rank, one lazily-dialed connection per (sender,
// receiver) pair. It gives the MPI patternlets a real network substrate —
// every byte of every message traverses the kernel's TCP stack — standing
// in for the paper's Beowulf cluster interconnect.
type TCPTransport struct {
	np        int
	boxes     []*mailbox
	listeners []net.Listener
	addrs     []string

	connMu sync.Mutex
	conns  map[[2]int]*tcpConn // key: {from, to}

	closeOnce sync.Once
	closed    chan struct{}
}

type tcpConn struct {
	mu  sync.Mutex
	c   net.Conn
	enc *gob.Encoder
}

// frame is the wire representation of a message: the destination rank is
// carried explicitly so a single accept loop can demultiplex.
type frame struct {
	Dst int
	Msg Message
}

// NewTCPTransport creates a loopback TCP transport for np ranks. It binds
// np ephemeral ports on 127.0.0.1 and starts an accept loop per rank.
func NewTCPTransport(np int) (*TCPTransport, error) {
	t := &TCPTransport{
		np:     np,
		boxes:  make([]*mailbox, np),
		conns:  map[[2]int]*tcpConn{},
		closed: make(chan struct{}),
	}
	for i := 0; i < np; i++ {
		t.boxes[i] = newMailbox()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			_ = t.Close()
			return nil, fmt.Errorf("cluster: listen for rank %d: %w", i, err)
		}
		t.listeners = append(t.listeners, ln)
		t.addrs = append(t.addrs, ln.Addr().String())
		go t.acceptLoop(i, ln)
	}
	return t, nil
}

func (t *TCPTransport) acceptLoop(rank int, ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		go t.readLoop(rank, conn)
	}
}

func (t *TCPTransport) readLoop(rank int, conn net.Conn) {
	dec := gob.NewDecoder(conn)
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			_ = conn.Close()
			return
		}
		if f.Dst == rank {
			_ = t.boxes[rank].put(f.Msg)
		}
	}
}

func (t *TCPTransport) dial(from, to int) (*tcpConn, error) {
	t.connMu.Lock()
	defer t.connMu.Unlock()
	key := [2]int{from, to}
	if c, ok := t.conns[key]; ok {
		return c, nil
	}
	select {
	case <-t.closed:
		return nil, ErrClosed
	default:
	}
	nc, err := net.DialTimeout("tcp", t.addrs[to], 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial rank %d: %w", to, err)
	}
	c := &tcpConn{c: nc, enc: gob.NewEncoder(nc)}
	t.conns[key] = c
	return c, nil
}

// Send implements Transport. The sending rank is taken from m.Src.
func (t *TCPTransport) Send(to int, m Message) error {
	if to < 0 || to >= t.np {
		return errBadRank(to, t.np)
	}
	c, err := t.dial(m.Src, to)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(frame{Dst: to, Msg: m}); err != nil {
		return fmt.Errorf("cluster: send to rank %d: %w", to, err)
	}
	return nil
}

// Recv implements Transport.
func (t *TCPTransport) Recv(rank int, match func(Message) bool) (Message, error) {
	if rank < 0 || rank >= t.np {
		return Message{}, errBadRank(rank, t.np)
	}
	return t.boxes[rank].take(match, true, 0)
}

// RecvTimeout implements Transport.
func (t *TCPTransport) RecvTimeout(rank int, match func(Message) bool, timeoutNanos int64) (Message, error) {
	if rank < 0 || rank >= t.np {
		return Message{}, errBadRank(rank, t.np)
	}
	return t.boxes[rank].take(match, true, time.Duration(timeoutNanos))
}

// Probe implements Transport.
func (t *TCPTransport) Probe(rank int, match func(Message) bool) (Message, error) {
	if rank < 0 || rank >= t.np {
		return Message{}, errBadRank(rank, t.np)
	}
	return t.boxes[rank].take(match, false, 0)
}

// Close implements Transport: shuts listeners, connections and mailboxes.
func (t *TCPTransport) Close() error {
	var errs []error
	t.closeOnce.Do(func() {
		close(t.closed)
		for _, ln := range t.listeners {
			if err := ln.Close(); err != nil {
				errs = append(errs, err)
			}
		}
		t.connMu.Lock()
		for _, c := range t.conns {
			if err := c.c.Close(); err != nil {
				errs = append(errs, err)
			}
		}
		t.connMu.Unlock()
		for _, b := range t.boxes {
			b.close()
		}
	})
	return errors.Join(errs...)
}

// Addrs returns the listen addresses, one per rank (useful in tests).
func (t *TCPTransport) Addrs() []string {
	out := make([]string, len(t.addrs))
	copy(out, t.addrs)
	return out
}
