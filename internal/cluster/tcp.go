package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCPTransport carries messages over loopback TCP sockets as compact
// length-prefixed binary frames (wire.go): one listener per rank, one
// lazily-dialed connection per (sender, receiver) pair. It gives the MPI
// patternlets a real network substrate — every byte of every message
// traverses the kernel's TCP stack — standing in for the paper's Beowulf
// cluster interconnect.
//
// Small-message coalescing: with a non-zero batch window (WithBatchWindow)
// every frame queued to the same peer within the window rides a single
// write, trading up to one window of latency for an order of magnitude
// fewer syscalls on chatty workloads. The default window is zero —
// immediate single-write (or vectored-write) flushes — because the
// patternlets teach latency first.
type TCPTransport struct {
	np        int
	boxes     []*mailbox
	listeners []net.Listener
	addrs     []string

	cfg  tcpConfig
	wire wireCounters

	connMu sync.Mutex
	conns  map[[2]int]*wireConn // key: {from, to}

	closeOnce sync.Once
	closed    chan struct{}
}

// tcpConfig carries the tunables the TCPOption functions set.
type tcpConfig struct {
	dialTimeout time.Duration
	batchWindow time.Duration
	noDelay     bool
}

func defaultTCPConfig() tcpConfig {
	return tcpConfig{dialTimeout: 5 * time.Second, noDelay: true}
}

// TCPOption configures a TCPTransport, following the WithX
// functional-option convention the rest of the repository uses.
type TCPOption func(*tcpConfig)

// WithDialTimeout bounds the lazy per-peer dial (default 5s).
func WithDialTimeout(d time.Duration) TCPOption {
	return func(c *tcpConfig) { c.dialTimeout = d }
}

// WithBatchWindow enables small-message coalescing: frames queued to the
// same peer within d of each other are batched into one write. Zero (the
// default) flushes every frame immediately.
func WithBatchWindow(d time.Duration) TCPOption {
	return func(c *tcpConfig) { c.batchWindow = d }
}

// WithNoDelay controls TCP_NODELAY on every connection (default true:
// the transport manages its own batching, so kernel-side Nagle delay is
// never wanted unless explicitly requested for comparison runs).
func WithNoDelay(enabled bool) TCPOption {
	return func(c *tcpConfig) { c.noDelay = enabled }
}

// NewTCPTransport creates a loopback TCP transport for np ranks. It binds
// np ephemeral ports on 127.0.0.1 and starts an accept loop per rank.
func NewTCPTransport(np int, opts ...TCPOption) (*TCPTransport, error) {
	cfg := defaultTCPConfig()
	for _, o := range opts {
		o(&cfg)
	}
	t := &TCPTransport{
		np:     np,
		boxes:  make([]*mailbox, np),
		cfg:    cfg,
		conns:  map[[2]int]*wireConn{},
		closed: make(chan struct{}),
	}
	t.wire.init()
	for i := 0; i < np; i++ {
		t.boxes[i] = newMailbox()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			_ = t.Close()
			return nil, fmt.Errorf("cluster: listen for rank %d: %w", i, err)
		}
		t.listeners = append(t.listeners, ln)
		t.addrs = append(t.addrs, ln.Addr().String())
		go t.acceptLoop(i, ln)
	}
	return t, nil
}

func (t *TCPTransport) acceptLoop(rank int, ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		box := t.boxes[rank]
		go readFrames(conn, rank, &t.wire, func(m Message) { _ = box.put(m) })
	}
}

func (t *TCPTransport) dial(from, to int) (*wireConn, error) {
	t.connMu.Lock()
	defer t.connMu.Unlock()
	key := [2]int{from, to}
	if c, ok := t.conns[key]; ok {
		return c, nil
	}
	select {
	case <-t.closed:
		return nil, ErrClosed
	default:
	}
	nc, err := net.DialTimeout("tcp", t.addrs[to], t.cfg.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial rank %d: %w", to, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(t.cfg.noDelay)
	}
	c := newWireConn(nc, t.cfg.batchWindow, &t.wire)
	t.conns[key] = c
	return c, nil
}

// Send implements Transport. The sending rank is taken from m.Src. The
// frame (header and payload) is fully serialized before Send returns, so
// the transport reports SendCopiesPayload and callers can recycle
// payload buffers immediately.
func (t *TCPTransport) Send(to int, m Message) error {
	if to < 0 || to >= t.np {
		return errBadRank(to, t.np)
	}
	c, err := t.dial(m.Src, to)
	if err != nil {
		return err
	}
	if err := c.send(to, m); err != nil {
		return fmt.Errorf("cluster: send to rank %d: %w", to, err)
	}
	return nil
}

// SendCopiesPayload implements PayloadCopier: the payload is copied into
// the frame (or written to the socket) before Send returns.
func (t *TCPTransport) SendCopiesPayload() bool { return true }

// WireStats implements WireStatser: misrouted-frame and flush counters.
func (t *TCPTransport) WireStats() map[string]int64 { return t.wire.snapshot() }

// Recv implements Transport.
func (t *TCPTransport) Recv(rank int, mt Match) (Message, error) {
	if rank < 0 || rank >= t.np {
		return Message{}, errBadRank(rank, t.np)
	}
	return t.boxes[rank].take(mt, true, 0)
}

// RecvTimeout implements Transport.
func (t *TCPTransport) RecvTimeout(rank int, mt Match, timeoutNanos int64) (Message, error) {
	if rank < 0 || rank >= t.np {
		return Message{}, errBadRank(rank, t.np)
	}
	return t.boxes[rank].take(mt, true, time.Duration(timeoutNanos))
}

// Probe implements Transport.
func (t *TCPTransport) Probe(rank int, mt Match) (Message, error) {
	if rank < 0 || rank >= t.np {
		return Message{}, errBadRank(rank, t.np)
	}
	return t.boxes[rank].take(mt, false, 0)
}

// Close implements Transport: shuts listeners, connections and mailboxes.
func (t *TCPTransport) Close() error {
	var errs []error
	t.closeOnce.Do(func() {
		close(t.closed)
		for _, ln := range t.listeners {
			if err := ln.Close(); err != nil {
				errs = append(errs, err)
			}
		}
		t.connMu.Lock()
		for _, c := range t.conns {
			if err := c.close(); err != nil {
				errs = append(errs, err)
			}
		}
		t.connMu.Unlock()
		for _, b := range t.boxes {
			b.close()
		}
	})
	return errors.Join(errs...)
}

// Addrs returns the listen addresses, one per rank (useful in tests).
func (t *TCPTransport) Addrs() []string {
	out := make([]string, len(t.addrs))
	copy(out, t.addrs)
	return out
}
