package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// RemoteTransport is the multi-OS-process variant of TCPTransport: it
// carries exactly one rank of the world, with the other ranks living in
// other processes (or other RemoteTransport instances). Each instance
// owns one listener and a mailbox for its own rank, and dials peers by an
// address table agreed on at startup (see the launch package's
// rendezvous). It speaks the same length-prefixed binary frame format as
// TCPTransport (wire.go), so the two interoperate byte-for-byte.
//
// With this transport, the "distributed-memory" property is not merely
// simulated: ranks are separate operating-system processes with disjoint
// address spaces, exactly like the paper's Beowulf cluster runs.
type RemoteTransport struct {
	rank  int
	np    int
	addrs []string
	box   *mailbox
	ln    net.Listener

	cfg  tcpConfig
	wire wireCounters

	connMu sync.Mutex
	conns  map[int]*wireConn

	closeOnce sync.Once
	closed    chan struct{}
}

// NewRemoteTransport creates the transport for one rank. ln must already
// be listening on addrs[rank]; the address table must be identical in all
// processes. Options tune dialing and coalescing exactly as on
// TCPTransport.
func NewRemoteTransport(rank, np int, addrs []string, ln net.Listener, opts ...TCPOption) (*RemoteTransport, error) {
	if rank < 0 || rank >= np {
		return nil, fmt.Errorf("cluster: remote rank %d out of range for np %d", rank, np)
	}
	if len(addrs) != np {
		return nil, fmt.Errorf("cluster: %d addresses for np %d", len(addrs), np)
	}
	cfg := defaultTCPConfig()
	cfg.dialTimeout = 10 * time.Second // cross-process startup is slower than loopback
	for _, o := range opts {
		o(&cfg)
	}
	t := &RemoteTransport{
		rank:   rank,
		np:     np,
		addrs:  append([]string(nil), addrs...),
		box:    newMailbox(),
		ln:     ln,
		cfg:    cfg,
		conns:  map[int]*wireConn{},
		closed: make(chan struct{}),
	}
	t.wire.init()
	go t.acceptLoop()
	return t, nil
}

// ListenLoopback binds an ephemeral loopback listener, for rank processes
// to create before the rendezvous.
func ListenLoopback() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

func (t *RemoteTransport) acceptLoop() {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		go readFrames(conn, t.rank, &t.wire, func(m Message) { _ = t.box.put(m) })
	}
}

func (t *RemoteTransport) dial(to int) (*wireConn, error) {
	t.connMu.Lock()
	defer t.connMu.Unlock()
	if c, ok := t.conns[to]; ok {
		return c, nil
	}
	select {
	case <-t.closed:
		return nil, ErrClosed
	default:
	}
	nc, err := net.DialTimeout("tcp", t.addrs[to], t.cfg.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial remote rank %d at %s: %w", to, t.addrs[to], err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(t.cfg.noDelay)
	}
	c := newWireConn(nc, t.cfg.batchWindow, &t.wire)
	t.conns[to] = c
	return c, nil
}

// Send implements Transport.
func (t *RemoteTransport) Send(to int, m Message) error {
	if to < 0 || to >= t.np {
		return errBadRank(to, t.np)
	}
	if to == t.rank {
		return t.box.put(m) // self-send stays local
	}
	c, err := t.dial(to)
	if err != nil {
		return err
	}
	if err := c.send(to, m); err != nil {
		return fmt.Errorf("cluster: send to remote rank %d: %w", to, err)
	}
	return nil
}

// WireStats implements WireStatser.
func (t *RemoteTransport) WireStats() map[string]int64 { return t.wire.snapshot() }

// Note: RemoteTransport does NOT implement PayloadCopier — a self-send
// parks the caller's payload slice in the local mailbox, so sender-side
// buffers must stay live until consumed.

// checkOwnRank rejects receive operations for ranks this process does not
// host.
func (t *RemoteTransport) checkOwnRank(rank int) error {
	if rank != t.rank {
		return fmt.Errorf("cluster: this process hosts rank %d, not %d", t.rank, rank)
	}
	return nil
}

// Recv implements Transport for this process's own rank.
func (t *RemoteTransport) Recv(rank int, mt Match) (Message, error) {
	if err := t.checkOwnRank(rank); err != nil {
		return Message{}, err
	}
	return t.box.take(mt, true, 0)
}

// RecvTimeout implements Transport.
func (t *RemoteTransport) RecvTimeout(rank int, mt Match, timeoutNanos int64) (Message, error) {
	if err := t.checkOwnRank(rank); err != nil {
		return Message{}, err
	}
	return t.box.take(mt, true, time.Duration(timeoutNanos))
}

// Probe implements Transport.
func (t *RemoteTransport) Probe(rank int, mt Match) (Message, error) {
	if err := t.checkOwnRank(rank); err != nil {
		return Message{}, err
	}
	return t.box.take(mt, false, 0)
}

// Close implements Transport.
func (t *RemoteTransport) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		_ = t.ln.Close()
		t.connMu.Lock()
		for _, c := range t.conns {
			_ = c.close()
		}
		t.connMu.Unlock()
		t.box.close()
	})
	return nil
}

// Rank returns the world rank this transport hosts.
func (t *RemoteTransport) Rank() int { return t.rank }

// Addrs returns the world address table.
func (t *RemoteTransport) Addrs() []string { return append([]string(nil), t.addrs...) }
