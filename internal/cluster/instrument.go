package cluster

import (
	"strconv"
	"strings"
	"sync"

	"repro/internal/telemetry"
)

// Instrumented counts the traffic flowing through a transport: sends and
// receives, payload bytes in each direction, and per-peer message counts
// — totalled and broken down per communicator id, so the MPI layer can
// report what a pattern actually moves (Comm.Stats). The counters are a
// telemetry.CounterSet per accounting bucket — the same named-atomic
// spine every other runtime stat in this repository reads from — and
// TrafficStats is a snapshot view decoded from it. Counters are
// lock-free atomics on the hot path; the only synchronization is the
// first-touch insertion of a new communicator or peer slot.
type Instrumented struct {
	Middleware
	total trafficCounters
	comms sync.Map // communicator id -> *trafficCounters
}

// TrafficStats is a point-in-time snapshot of traffic counters. All maps
// are non-nil in every TrafficStats this package returns, including the
// zero-traffic snapshot for an unknown communicator.
type TrafficStats struct {
	Sends      uint64         // messages handed to the layer below
	Recvs      uint64         // messages delivered to receivers
	BytesSent  uint64         // payload bytes sent
	BytesRecvd uint64         // payload bytes received
	PeerSends  map[int]uint64 // destination world rank -> messages sent
	PeerRecvs  map[int]uint64 // source world rank -> messages received
}

// Counter names within a bucket's CounterSet. Per-peer counters append
// "/<world rank>" to the peer prefixes.
const (
	ctrSends      = "sends"
	ctrRecvs      = "recvs"
	ctrBytesSent  = "bytes_sent"
	ctrBytesRecvd = "bytes_recvd"
	ctrPeerSend   = "peer_sends/"
	ctrPeerRecv   = "peer_recvs/"
)

// trafficCounters is one accounting bucket (the totals, or one
// communicator's slice of them): a telemetry counter set plus resolved
// pointers for the four fixed counters and a rank-keyed cache for the
// per-peer ones, so the per-message path never formats a name or takes
// the set's lock.
type trafficCounters struct {
	set       telemetry.CounterSet
	initOnce  sync.Once
	sends     *telemetry.Counter
	recvs     *telemetry.Counter
	bytesSent *telemetry.Counter
	bytesRecv *telemetry.Counter
	peerSends sync.Map // destination rank -> *telemetry.Counter
	peerRecvs sync.Map // source rank -> *telemetry.Counter
}

func (tc *trafficCounters) init() {
	tc.initOnce.Do(func() {
		tc.sends = tc.set.Counter(ctrSends)
		tc.recvs = tc.set.Counter(ctrRecvs)
		tc.bytesSent = tc.set.Counter(ctrBytesSent)
		tc.bytesRecv = tc.set.Counter(ctrBytesRecvd)
	})
}

// peerCounter resolves the per-peer counter for rank in cache, creating
// the underlying telemetry counter (named prefix + rank) on first touch.
func peerCounter(set *telemetry.CounterSet, cache *sync.Map, prefix string, rank int) *telemetry.Counter {
	if v, ok := cache.Load(rank); ok {
		return v.(*telemetry.Counter)
	}
	c := set.Counter(prefix + strconv.Itoa(rank))
	v, _ := cache.LoadOrStore(rank, c)
	return v.(*telemetry.Counter)
}

func (tc *trafficCounters) recordSend(to int, bytes uint64) {
	tc.init()
	tc.sends.Inc()
	tc.bytesSent.Add(int64(bytes))
	peerCounter(&tc.set, &tc.peerSends, ctrPeerSend, to).Inc()
}

func (tc *trafficCounters) recordRecv(from int, bytes uint64) {
	tc.init()
	tc.recvs.Inc()
	tc.bytesRecv.Add(int64(bytes))
	peerCounter(&tc.set, &tc.peerRecvs, ctrPeerRecv, from).Inc()
}

// emptyTrafficStats is the shared zero-value constructor: every map
// initialized, so callers can index a snapshot for a communicator that
// has carried no traffic without nil-map surprises.
func emptyTrafficStats() TrafficStats {
	return TrafficStats{PeerSends: map[int]uint64{}, PeerRecvs: map[int]uint64{}}
}

// snapshot decodes the bucket's counter set into a TrafficStats — the
// one place the telemetry names map onto the stats view, shared by
// Totals and CommStats.
func (tc *trafficCounters) snapshot() TrafficStats {
	st := emptyTrafficStats()
	for name, v := range tc.set.Snapshot() {
		switch {
		case name == ctrSends:
			st.Sends = uint64(v)
		case name == ctrRecvs:
			st.Recvs = uint64(v)
		case name == ctrBytesSent:
			st.BytesSent = uint64(v)
		case name == ctrBytesRecvd:
			st.BytesRecvd = uint64(v)
		case strings.HasPrefix(name, ctrPeerSend):
			if rank, err := strconv.Atoi(name[len(ctrPeerSend):]); err == nil {
				st.PeerSends[rank] = uint64(v)
			}
		case strings.HasPrefix(name, ctrPeerRecv):
			if rank, err := strconv.Atoi(name[len(ctrPeerRecv):]); err == nil {
				st.PeerRecvs[rank] = uint64(v)
			}
		}
	}
	return st
}

// NewInstrumented wraps inner with traffic accounting.
func NewInstrumented(inner Transport) *Instrumented {
	return &Instrumented{Middleware: Middleware{Inner: inner}}
}

func (t *Instrumented) commCounters(comm int) *trafficCounters {
	if v, ok := t.comms.Load(comm); ok {
		return v.(*trafficCounters)
	}
	v, _ := t.comms.LoadOrStore(comm, &trafficCounters{})
	return v.(*trafficCounters)
}

// Send implements Transport, counting messages the layer below accepted.
func (t *Instrumented) Send(to int, m Message) error {
	if err := t.Inner.Send(to, m); err != nil {
		return err
	}
	n := uint64(len(m.Payload))
	t.total.recordSend(to, n)
	t.commCounters(m.Comm).recordSend(to, n)
	return nil
}

// Recv implements Transport, counting delivered messages.
func (t *Instrumented) Recv(rank int, match func(Message) bool) (Message, error) {
	m, err := t.Inner.Recv(rank, match)
	if err == nil {
		t.total.recordRecv(m.Src, uint64(len(m.Payload)))
		t.commCounters(m.Comm).recordRecv(m.Src, uint64(len(m.Payload)))
	}
	return m, err
}

// RecvTimeout implements Transport, counting delivered messages.
func (t *Instrumented) RecvTimeout(rank int, match func(Message) bool, timeoutNanos int64) (Message, error) {
	m, err := t.Inner.RecvTimeout(rank, match, timeoutNanos)
	if err == nil {
		t.total.recordRecv(m.Src, uint64(len(m.Payload)))
		t.commCounters(m.Comm).recordRecv(m.Src, uint64(len(m.Payload)))
	}
	return m, err
}

// Totals returns the counters summed over every communicator.
func (t *Instrumented) Totals() TrafficStats { return t.total.snapshot() }

// CommStats returns the counters for one communicator id. An id that has
// carried no traffic reports zeroes with every map initialized.
func (t *Instrumented) CommStats(comm int) TrafficStats {
	if v, ok := t.comms.Load(comm); ok {
		return v.(*trafficCounters).snapshot()
	}
	return emptyTrafficStats()
}

// FoldInto adds this transport's traffic totals to the collector's
// counter set under "cluster."-prefixed names — the hook mpi.Run uses to
// surface world traffic in a process-wide telemetry summary.
func (t *Instrumented) FoldInto(col *telemetry.Collector) {
	st := t.Totals()
	col.Counter("cluster.sends").Add(int64(st.Sends))
	col.Counter("cluster.recvs").Add(int64(st.Recvs))
	col.Counter("cluster.bytes_sent").Add(int64(st.BytesSent))
	col.Counter("cluster.bytes_recvd").Add(int64(st.BytesRecvd))
}
