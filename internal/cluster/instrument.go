package cluster

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Instrumented counts the traffic flowing through a transport: sends and
// receives, payload bytes in each direction, and per-peer message counts
// — totalled and broken down per communicator id, so the MPI layer can
// report what a pattern actually moves (Comm.Stats). The counters are a
// telemetry.CounterSet per accounting bucket — the same named-atomic
// spine every other runtime stat in this repository reads from — and
// TrafficStats is a snapshot view decoded from it. Counters are
// lock-free atomics on the hot path; the only synchronization is the
// first-touch insertion of a new communicator or peer slot.
type Instrumented struct {
	Middleware
	total trafficCounters
	comms sync.Map // communicator id -> *trafficCounters
	// commCache short-circuits the comms lookup for the most recently used
	// communicator: traffic is bursty per communicator (usually the world
	// comm), and the sync.Map path hashes a boxed int key per message.
	commCache atomic.Pointer[commSlot]
}

type commSlot struct {
	id int
	tc *trafficCounters
}

// TrafficStats is a point-in-time snapshot of traffic counters. All maps
// are non-nil in every TrafficStats this package returns, including the
// zero-traffic snapshot for an unknown communicator.
type TrafficStats struct {
	Sends      uint64         // messages handed to the layer below
	Recvs      uint64         // messages delivered to receivers
	BytesSent  uint64         // payload bytes sent
	BytesRecvd uint64         // payload bytes received
	PeerSends  map[int]uint64 // destination world rank -> messages sent
	PeerRecvs  map[int]uint64 // source world rank -> messages received
	// Wire holds the underlying transport's wire-level counters
	// (misrouted_frames, flush_immediate, flush_batched, frames_coalesced)
	// when the transport keeps them; empty otherwise. Only Totals
	// populates it — wire counters are per-connection, not per-communicator.
	Wire map[string]int64
}

// Counter names within a bucket's CounterSet. Per-peer counters append
// "/<world rank>" to the peer prefixes.
const (
	ctrSends      = "sends"
	ctrRecvs      = "recvs"
	ctrBytesSent  = "bytes_sent"
	ctrBytesRecvd = "bytes_recvd"
	ctrPeerSend   = "peer_sends/"
	ctrPeerRecv   = "peer_recvs/"
)

// trafficCounters is one accounting bucket (the totals, or one
// communicator's slice of them): a telemetry counter set plus resolved
// pointers for the four fixed counters and a rank-keyed cache for the
// per-peer ones, so the per-message path never formats a name or takes
// the set's lock.
type trafficCounters struct {
	set       telemetry.CounterSet
	initOnce  sync.Once
	sends     *telemetry.Counter
	recvs     *telemetry.Counter
	bytesSent *telemetry.Counter
	bytesRecv *telemetry.Counter
	peerSends peerCounters // indexed by destination rank
	peerRecvs peerCounters // indexed by source rank
}

// peerCounters is a rank-indexed counter table with lock-free reads: the
// hot path is one atomic pointer load and a slice index — world ranks are
// small dense ints, so a slice beats the interface-keyed sync.Map it
// replaced (which hashed a boxed int per message). Growth copies under
// the mutex; readers keep using the old table until the swap.
type peerCounters struct {
	tbl atomic.Pointer[[]*telemetry.Counter]
	mu  sync.Mutex
}

func (pc *peerCounters) get(set *telemetry.CounterSet, prefix string, rank int) *telemetry.Counter {
	if t := pc.tbl.Load(); t != nil && rank < len(*t) {
		if c := (*t)[rank]; c != nil {
			return c
		}
	}
	if rank < 0 {
		// Defensive: a negative rank cannot index the table; count it under
		// its formatted name only.
		return set.Counter(prefix + strconv.Itoa(rank))
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	var cur []*telemetry.Counter
	if t := pc.tbl.Load(); t != nil {
		cur = *t
	}
	if rank < len(cur) && cur[rank] != nil {
		return cur[rank]
	}
	n := len(cur)
	if n <= rank {
		n = rank + 1
	}
	next := make([]*telemetry.Counter, n)
	copy(next, cur)
	c := set.Counter(prefix + strconv.Itoa(rank))
	next[rank] = c
	pc.tbl.Store(&next)
	return c
}

func (tc *trafficCounters) init() {
	tc.initOnce.Do(func() {
		tc.sends = tc.set.Counter(ctrSends)
		tc.recvs = tc.set.Counter(ctrRecvs)
		tc.bytesSent = tc.set.Counter(ctrBytesSent)
		tc.bytesRecv = tc.set.Counter(ctrBytesRecvd)
	})
}

func (tc *trafficCounters) recordSend(to int, bytes uint64) {
	tc.init()
	tc.sends.Inc()
	tc.bytesSent.Add(int64(bytes))
	tc.peerSends.get(&tc.set, ctrPeerSend, to).Inc()
}

func (tc *trafficCounters) recordRecv(from int, bytes uint64) {
	tc.init()
	tc.recvs.Inc()
	tc.bytesRecv.Add(int64(bytes))
	tc.peerRecvs.get(&tc.set, ctrPeerRecv, from).Inc()
}

// emptyTrafficStats is the shared zero-value constructor: every map
// initialized, so callers can index a snapshot for a communicator that
// has carried no traffic without nil-map surprises.
func emptyTrafficStats() TrafficStats {
	return TrafficStats{
		PeerSends: map[int]uint64{},
		PeerRecvs: map[int]uint64{},
		Wire:      map[string]int64{},
	}
}

// snapshot decodes the bucket's counter set into a TrafficStats — the
// one place the telemetry names map onto the stats view, shared by
// Totals and CommStats.
func (tc *trafficCounters) snapshot() TrafficStats {
	st := emptyTrafficStats()
	for name, v := range tc.set.Snapshot() {
		switch {
		case name == ctrSends:
			st.Sends = uint64(v)
		case name == ctrRecvs:
			st.Recvs = uint64(v)
		case name == ctrBytesSent:
			st.BytesSent = uint64(v)
		case name == ctrBytesRecvd:
			st.BytesRecvd = uint64(v)
		case strings.HasPrefix(name, ctrPeerSend):
			if rank, err := strconv.Atoi(name[len(ctrPeerSend):]); err == nil {
				st.PeerSends[rank] = uint64(v)
			}
		case strings.HasPrefix(name, ctrPeerRecv):
			if rank, err := strconv.Atoi(name[len(ctrPeerRecv):]); err == nil {
				st.PeerRecvs[rank] = uint64(v)
			}
		}
	}
	return st
}

// NewInstrumented wraps inner with traffic accounting.
func NewInstrumented(inner Transport) *Instrumented {
	return &Instrumented{Middleware: Middleware{Inner: inner}}
}

func (t *Instrumented) commCounters(comm int) *trafficCounters {
	if s := t.commCache.Load(); s != nil && s.id == comm {
		return s.tc
	}
	v, ok := t.comms.Load(comm)
	if !ok {
		v, _ = t.comms.LoadOrStore(comm, &trafficCounters{})
	}
	tc := v.(*trafficCounters)
	t.commCache.Store(&commSlot{id: comm, tc: tc})
	return tc
}

// Send implements Transport, counting messages the layer below accepted.
func (t *Instrumented) Send(to int, m Message) error {
	if err := t.Inner.Send(to, m); err != nil {
		return err
	}
	n := uint64(len(m.Payload))
	t.total.recordSend(to, n)
	t.commCounters(m.Comm).recordSend(to, n)
	return nil
}

// Recv implements Transport, counting delivered messages.
func (t *Instrumented) Recv(rank int, mt Match) (Message, error) {
	m, err := t.Inner.Recv(rank, mt)
	if err == nil {
		t.total.recordRecv(m.Src, uint64(len(m.Payload)))
		t.commCounters(m.Comm).recordRecv(m.Src, uint64(len(m.Payload)))
	}
	return m, err
}

// RecvTimeout implements Transport, counting delivered messages.
func (t *Instrumented) RecvTimeout(rank int, mt Match, timeoutNanos int64) (Message, error) {
	m, err := t.Inner.RecvTimeout(rank, mt, timeoutNanos)
	if err == nil {
		t.total.recordRecv(m.Src, uint64(len(m.Payload)))
		t.commCounters(m.Comm).recordRecv(m.Src, uint64(len(m.Payload)))
	}
	return m, err
}

// Totals returns the counters summed over every communicator, with the
// underlying transport's wire-level counters (when it keeps any) merged
// into the Wire map — this is where misrouted frames become visible
// instead of being dropped silently inside a read loop.
func (t *Instrumented) Totals() TrafficStats {
	st := t.total.snapshot()
	for name, v := range WireStats(t.Inner) {
		st.Wire[name] = v
	}
	return st
}

// CommStats returns the counters for one communicator id. An id that has
// carried no traffic reports zeroes with every map initialized.
func (t *Instrumented) CommStats(comm int) TrafficStats {
	if v, ok := t.comms.Load(comm); ok {
		return v.(*trafficCounters).snapshot()
	}
	return emptyTrafficStats()
}

// FoldInto adds this transport's traffic totals to the collector's
// counter set under "cluster."-prefixed names — the hook mpi.Run uses to
// surface world traffic in a process-wide telemetry summary. Wire-level
// counters fold under the same prefix (cluster.misrouted_frames,
// cluster.flush_immediate, …).
func (t *Instrumented) FoldInto(col *telemetry.Collector) {
	st := t.Totals()
	col.Counter("cluster.sends").Add(int64(st.Sends))
	col.Counter("cluster.recvs").Add(int64(st.Recvs))
	col.Counter("cluster.bytes_sent").Add(int64(st.BytesSent))
	col.Counter("cluster.bytes_recvd").Add(int64(st.BytesRecvd))
	for name, v := range st.Wire {
		col.Counter("cluster." + name).Add(v)
	}
}
