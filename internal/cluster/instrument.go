package cluster

import (
	"sync"
	"sync/atomic"
)

// Instrumented counts the traffic flowing through a transport: sends and
// receives, payload bytes in each direction, and per-destination message
// counts — totalled and broken down per communicator id, so the MPI layer
// can report what a pattern actually moves (Comm.Stats). Counters are
// lock-free atomics on the hot path; the only synchronization is the
// first-touch insertion of a new communicator or peer slot.
type Instrumented struct {
	Middleware
	total trafficCounters
	comms sync.Map // communicator id -> *trafficCounters
}

// TrafficStats is a point-in-time snapshot of traffic counters.
type TrafficStats struct {
	Sends      uint64         // messages handed to the layer below
	Recvs      uint64         // messages delivered to receivers
	BytesSent  uint64         // payload bytes sent
	BytesRecvd uint64         // payload bytes received
	PeerSends  map[int]uint64 // destination world rank -> messages sent
}

// trafficCounters is one accounting bucket (the totals, or one
// communicator's slice of them).
type trafficCounters struct {
	sends      atomic.Uint64
	recvs      atomic.Uint64
	bytesSent  atomic.Uint64
	bytesRecvd atomic.Uint64
	peerSends  sync.Map // destination rank -> *atomic.Uint64
}

func (tc *trafficCounters) recordSend(to int, bytes uint64) {
	tc.sends.Add(1)
	tc.bytesSent.Add(bytes)
	v, ok := tc.peerSends.Load(to)
	if !ok {
		v, _ = tc.peerSends.LoadOrStore(to, new(atomic.Uint64))
	}
	v.(*atomic.Uint64).Add(1)
}

func (tc *trafficCounters) recordRecv(bytes uint64) {
	tc.recvs.Add(1)
	tc.bytesRecvd.Add(bytes)
}

func (tc *trafficCounters) snapshot() TrafficStats {
	st := TrafficStats{
		Sends:      tc.sends.Load(),
		Recvs:      tc.recvs.Load(),
		BytesSent:  tc.bytesSent.Load(),
		BytesRecvd: tc.bytesRecvd.Load(),
		PeerSends:  map[int]uint64{},
	}
	tc.peerSends.Range(func(k, v any) bool {
		st.PeerSends[k.(int)] = v.(*atomic.Uint64).Load()
		return true
	})
	return st
}

// NewInstrumented wraps inner with traffic accounting.
func NewInstrumented(inner Transport) *Instrumented {
	return &Instrumented{Middleware: Middleware{Inner: inner}}
}

func (t *Instrumented) commCounters(comm int) *trafficCounters {
	if v, ok := t.comms.Load(comm); ok {
		return v.(*trafficCounters)
	}
	v, _ := t.comms.LoadOrStore(comm, &trafficCounters{})
	return v.(*trafficCounters)
}

// Send implements Transport, counting messages the layer below accepted.
func (t *Instrumented) Send(to int, m Message) error {
	if err := t.Inner.Send(to, m); err != nil {
		return err
	}
	n := uint64(len(m.Payload))
	t.total.recordSend(to, n)
	t.commCounters(m.Comm).recordSend(to, n)
	return nil
}

// Recv implements Transport, counting delivered messages.
func (t *Instrumented) Recv(rank int, match func(Message) bool) (Message, error) {
	m, err := t.Inner.Recv(rank, match)
	if err == nil {
		t.total.recordRecv(uint64(len(m.Payload)))
		t.commCounters(m.Comm).recordRecv(uint64(len(m.Payload)))
	}
	return m, err
}

// RecvTimeout implements Transport, counting delivered messages.
func (t *Instrumented) RecvTimeout(rank int, match func(Message) bool, timeoutNanos int64) (Message, error) {
	m, err := t.Inner.RecvTimeout(rank, match, timeoutNanos)
	if err == nil {
		t.total.recordRecv(uint64(len(m.Payload)))
		t.commCounters(m.Comm).recordRecv(uint64(len(m.Payload)))
	}
	return m, err
}

// Totals returns the counters summed over every communicator.
func (t *Instrumented) Totals() TrafficStats { return t.total.snapshot() }

// CommStats returns the counters for one communicator id. An id that has
// carried no traffic reports zeroes.
func (t *Instrumented) CommStats(comm int) TrafficStats {
	if v, ok := t.comms.Load(comm); ok {
		return v.(*trafficCounters).snapshot()
	}
	return TrafficStats{PeerSends: map[int]uint64{}}
}
