package ring

import (
	"fmt"
	"sync"
	"testing"
)

// testKeys builds a deterministic corpus shaped like registry keys.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("patternlet%d.mpi", i)
	}
	return keys
}

// Two independently built rings over the same membership must agree on
// every owner — the property that lets nodes route without coordinating.
func TestDeterministicAcrossInstances(t *testing.T) {
	a := New(0, "n1", "n2", "n3")
	b := New(0, "n3", "n1", "n2") // different insertion order
	for _, k := range testKeys(500) {
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("owner(%q): %q vs %q across instances", k, ao, bo)
		}
	}
}

func TestEmptyRing(t *testing.T) {
	r := New(4)
	if got := r.Owner("x"); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
	if got := r.Owners("x", 2); got != nil {
		t.Fatalf("empty ring owners = %v, want nil", got)
	}
	r.Remove("ghost") // no-op, must not panic
}

// Removing a node moves exactly that node's keys; every other key keeps
// its owner. This is the minimal-churn guarantee the forwarder's rehash
// path depends on.
func TestRemoveMovesOnlyTheDeadNodesKeys(t *testing.T) {
	r := New(0, "n1", "n2", "n3")
	keys := testKeys(1000)
	before := map[string]string{}
	for _, k := range keys {
		before[k] = r.Owner(k)
	}
	r.Remove("n2")
	for _, k := range keys {
		after := r.Owner(k)
		if before[k] == "n2" {
			if after == "n2" || after == "" {
				t.Fatalf("key %q still owned by removed node (owner=%q)", k, after)
			}
			continue
		}
		if after != before[k] {
			t.Fatalf("key %q moved %q -> %q though its owner survived", k, before[k], after)
		}
	}
}

// Adding a node only steals keys for itself; no key moves between two
// pre-existing members.
func TestAddStealsOnlyForItself(t *testing.T) {
	r := New(0, "n1", "n2")
	keys := testKeys(1000)
	before := map[string]string{}
	for _, k := range keys {
		before[k] = r.Owner(k)
	}
	r.Add("n3")
	moved := 0
	for _, k := range keys {
		after := r.Owner(k)
		if after == before[k] {
			continue
		}
		if after != "n3" {
			t.Fatalf("key %q moved %q -> %q on an unrelated add", k, before[k], after)
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("adding a third node stole no keys — vnodes not taking ownership")
	}
}

// With DefaultReplicas vnodes, a 3-node ring splits 1000 keys within a
// loose balance envelope (no node starved, none hoarding).
func TestDistributionIsRoughlyBalanced(t *testing.T) {
	r := New(0, "n1", "n2", "n3")
	shares := r.Shares(testKeys(1000))
	for node, n := range shares {
		if n < 150 || n > 550 {
			t.Fatalf("node %s owns %d of 1000 keys; shares=%v", node, n, shares)
		}
	}
}

// Owners returns distinct nodes in preference order, headed by Owner.
func TestOwnersDistinctAndHeadedByOwner(t *testing.T) {
	r := New(0, "n1", "n2", "n3")
	for _, k := range testKeys(100) {
		owners := r.Owners(k, 3)
		if len(owners) != 3 {
			t.Fatalf("owners(%q) = %v, want 3 distinct", k, owners)
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("owners(%q)[0] = %q, Owner = %q", k, owners[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("owners(%q) repeats %q: %v", k, o, owners)
			}
			seen[o] = true
		}
	}
	// Asking for more than membership clamps.
	if got := r.Owners("k", 99); len(got) != 3 {
		t.Fatalf("owners clamp: %v", got)
	}
}

// Re-adding a removed node restores its exact ownership: vnode hashes
// depend only on (node, index), so membership round-trips are stable.
func TestReAddRestoresOwnership(t *testing.T) {
	r := New(0, "n1", "n2", "n3")
	keys := testKeys(500)
	before := map[string]string{}
	for _, k := range keys {
		before[k] = r.Owner(k)
	}
	r.Remove("n3")
	r.Add("n3")
	for _, k := range keys {
		if got := r.Owner(k); got != before[k] {
			t.Fatalf("key %q: owner %q after re-add, want %q", k, got, before[k])
		}
	}
}

func TestDoubleAddIsNoOp(t *testing.T) {
	r := New(8, "n1")
	r.Add("n1")
	if got := len(r.points); got != 8 {
		t.Fatalf("double add left %d points, want 8", got)
	}
	if got := r.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
}

func TestMembersSorted(t *testing.T) {
	r := New(4, "zeta", "alpha", "mid")
	got := r.Members()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
}

// Concurrent lookups racing membership changes must be safe (run under
// -race by the Makefile gate) and never observe an empty answer while at
// least one member remains.
func TestConcurrentLookupsDuringMembershipChange(t *testing.T) {
	r := New(0, "n1", "n2", "n3")
	keys := testKeys(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, k := range keys {
					if r.Owner(k) == "" {
						t.Error("Owner returned \"\" with members present")
						return
					}
					r.Owners(k, 2)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		r.Remove("n3")
		r.Add("n3")
	}
	close(stop)
	wg.Wait()
}

func BenchmarkOwner(b *testing.B) {
	r := New(0, "n1", "n2", "n3", "n4", "n5")
	keys := testKeys(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Owner(keys[i%len(keys)])
	}
}
