// Package ring implements the consistent-hash ring that maps run keys to
// cluster nodes. Each node is projected onto the ring as many virtual
// points ("vnodes"); a key is owned by the node whose first vnode follows
// the key's hash clockwise. The construction is fully deterministic —
// same members, same replica count, same ownership in every process — so
// the patternletd nodes of a cluster can route independently and still
// agree, with no coordination traffic.
//
// The property the serving layer leans on is *minimal churn*: removing a
// node moves only the keys that node owned (they rehash to the survivors
// that held the next vnodes clockwise), and adding a node steals keys
// only for the ranges its new vnodes claim. Everything else stays put,
// which is what keeps a node death from reshuffling the whole catalog.
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultReplicas is the virtual-node count per member: enough points
// that a 3–10 node cluster's key shares stay within a few percent of
// even, while membership changes remain cheap to apply.
const DefaultReplicas = 128

// point is one virtual node: a position on the hash circle and the
// member that owns it.
type point struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring over named nodes. All methods are safe
// for concurrent use; membership changes (Add/Remove) take a write lock,
// lookups share a read lock.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	points   []point         // sorted by hash
	members  map[string]bool // node -> present
}

// New builds a ring with the given virtual-node count per member (<= 0
// selects DefaultReplicas) and initial membership.
func New(replicas int, nodes ...string) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{replicas: replicas, members: map[string]bool{}}
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// hashKey is FNV-1a 64 with a splitmix64 finalizer: stable across
// processes and Go versions (unlike maphash), and the avalanche step
// spreads the near-identical "node#i" vnode strings evenly around the
// circle, which raw FNV does not.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// vnodeKey names the i-th virtual point of a node.
func vnodeKey(node string, i int) string {
	return fmt.Sprintf("%s#%d", node, i)
}

// Add inserts a node's virtual points. Adding a present member is a
// no-op, so reconciliation loops can Add unconditionally.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[node] {
		return
	}
	r.members[node] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, point{hash: hashKey(vnodeKey(node, i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node's virtual points; its keys rehash to whichever
// members hold the next points clockwise. Removing an absent node is a
// no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[node] {
		return
	}
	delete(r.members, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Owner returns the node that owns key, or "" if the ring is empty.
func (r *Ring) Owner(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(hashKey(key))].node
}

// Owners returns up to n distinct nodes in ring order starting at key's
// owner — the preference list a forwarder walks when the owner is down.
// Fewer than n are returned when membership is smaller.
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := map[string]bool{}
	for i, start := 0, r.search(hashKey(key)); len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// search finds the index of the first point at or after h, wrapping to 0.
// Callers hold at least the read lock.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Replicas returns the virtual-node count per member.
func (r *Ring) Replicas() int { return r.replicas }

// Has reports whether node is a current member.
func (r *Ring) Has(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.members[node]
}

// Members returns the current membership, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for n := range r.members {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Shares counts, for each member, how many of the given keys it owns —
// the ownership table /healthz reports.
func (r *Ring) Shares(keys []string) map[string]int {
	out := map[string]int{}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for n := range r.members {
		out[n] = 0
	}
	if len(r.points) == 0 {
		return out
	}
	for _, k := range keys {
		out[r.points[r.search(hashKey(k))].node]++
	}
	return out
}
