// Package benchfmt is the on-disk schema of the repository's
// BENCH_<date>[_<label>].json recordings. Two producers write it —
// cmd/benchjson (go test -bench suites) and cmd/patternletbench (the
// HTTP load harness) — and keeping the struct in one place is what
// keeps their files mutually diffable with `benchjson -compare`.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// Result is one benchmark line: a named measurement with the standard
// go-bench axes plus free-form custom metrics (b.ReportMetric units for
// benchjson; qps / percentile nanoseconds for patternletbench).
type Result struct {
	Name        string             `json:"name"`
	Iters       int64              `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the on-disk format.
type File struct {
	Date      string   `json:"date"`
	Label     string   `json:"label,omitempty"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	CPU       string   `json:"cpu,omitempty"`
	Bench     string   `json:"bench"`
	BenchTime string   `json:"benchtime"`
	Results   []Result `json:"results"`
	// Telemetry is the counter snapshot from a fixed instrumented probe
	// workload, recorded alongside the timings so a BENCH file also
	// documents what the runtimes *did* — regions forked, tasks
	// spawned/stolen, collectives run, messages moved. patternletbench
	// stores the daemon's final /metrics.json scrape here instead.
	Telemetry map[string]int64 `json:"telemetry,omitempty"`
}

// NewFile stamps the environment fields every producer fills the same
// way; bench and benchtime describe what was run (a regex for benchjson,
// a workload descriptor for patternletbench).
func NewFile(label, bench, benchtime string) *File {
	return &File{
		Date:      time.Now().Format("2006-01-02"),
		Label:     label,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Bench:     bench,
		BenchTime: benchtime,
	}
}

// DefaultPath is the conventional file name: BENCH_<date>[_<label>].json
// in the current directory.
func (f *File) DefaultPath() string {
	path := "BENCH_" + f.Date
	if f.Label != "" {
		path += "_" + f.Label
	}
	return path + ".json"
}

// WriteFile writes f as indented JSON with a trailing newline, the exact
// layout of every BENCH_*.json committed so far.
func (f *File) WriteFile(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a BENCH_*.json recording.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}
